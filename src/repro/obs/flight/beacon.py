"""Status beacon: always-on progress counters, optionally mirrored to disk.

The runner, supervisor and serve daemon all know things an operator wants
*while the run is still going* — tasks done, queue depths, worker health,
cache hit rates, ETA — but until now that knowledge died inside each
process.  The beacon is the smallest possible fix:

- **in-process** it is a plain object whose update methods are attribute
  bumps (no locks on the hot path beyond the GIL, no I/O, no formatting) —
  cheap enough to leave on unconditionally, which is what the acceptance
  bench asserts;
- **externally** it mirrors a JSON snapshot to a status file via
  :func:`repro.resilience.atomic.atomic_write_text` — but *only* when a
  path is configured, and rate-limited by :func:`maybe_write`, so flagless
  runs touch no extra files and stay byte-identical.

``repro top`` and the serve daemon's ``/statusz`` endpoint render
:meth:`Beacon.snapshot`, which includes a rolling-throughput ETA computed
over a sliding window of completion samples (robust to the cold-start
spike and to cache-warm tails, unlike a since-start average).
"""

from __future__ import annotations

import os
import time
from collections import deque
from typing import Deque, Dict, Optional, Tuple

from repro.resilience.atomic import atomic_write_text

__all__ = [
    "Beacon",
    "configure_beacon",
    "get_beacon",
    "reset_beacon",
]

#: Sliding window (seconds) for the rolling-throughput ETA.
ETA_WINDOW_S = 60.0
#: Default minimum interval between status-file writes.
WRITE_INTERVAL_S = 0.5


class Beacon:
    """Live progress counters for one process's share of a run."""

    def __init__(
        self,
        role: str = "runner",
        run_id: Optional[str] = None,
        status_path: Optional[str] = None,
    ):
        self.role = role
        self.run_id = run_id
        self.status_path = status_path
        self.started_at = time.time()
        # Sweep progress.
        self.tasks_total = 0
        self.tasks_done = 0
        self.tasks_failed = 0
        self.active: Dict[str, float] = {}  # task name -> start timestamp
        # Supervisor health.
        self.queue_depth = 0
        self.workers = 0
        self.retries = 0
        self.timeouts = 0
        self.respawns = 0
        # Serve-side load.
        self.requests = 0
        self.in_flight = 0
        self.dedup_joins = 0
        self.shed = 0
        # Cache tiers (mirrors SimulationCache.stats tiers).
        self.cache: Dict[str, int] = {
            "exact": 0,
            "canonical": 0,
            "persistent": 0,
            "miss": 0,
        }
        self.extra: Dict[str, object] = {}
        self._samples: Deque[Tuple[float, int]] = deque()
        self._last_write = 0.0

    # ------------------------------------------------------------- updates
    def task_started(self, name: str) -> None:
        self.active[name] = time.time()

    def task_done(self, name: str, ok: bool = True) -> None:
        self.active.pop(name, None)
        self.tasks_done += 1
        if not ok:
            self.tasks_failed += 1
        now = time.time()
        self._samples.append((now, self.tasks_done))
        cutoff = now - ETA_WINDOW_S
        while self._samples and self._samples[0][0] < cutoff:
            self._samples.popleft()

    def note_cache(self, tier: str) -> None:
        self.cache[tier] = self.cache.get(tier, 0) + 1

    def update(self, **fields) -> None:
        """Bulk-set counters (``queue_depth=3, workers=2, ...``).

        Unknown names land in :attr:`extra` so call sites can publish
        ad-hoc gauges (budget state, drain phase) without schema churn.
        """
        for key, value in fields.items():
            if hasattr(self, key) and not key.startswith("_"):
                setattr(self, key, value)
            else:
                self.extra[key] = value

    # ------------------------------------------------------------ snapshot
    def throughput(self) -> float:
        """Rolling completions/second over the sample window (0.0 if cold)."""
        if len(self._samples) < 2:
            return 0.0
        (t0, d0), (t1, d1) = self._samples[0], self._samples[-1]
        if t1 <= t0:
            return 0.0
        return (d1 - d0) / (t1 - t0)

    def eta_seconds(self) -> Optional[float]:
        """Seconds to finish the remaining tasks at the rolling rate."""
        remaining = self.tasks_total - self.tasks_done
        if remaining <= 0:
            return 0.0
        rate = self.throughput()
        if rate <= 0.0:
            return None
        return remaining / rate

    def snapshot(self) -> dict:
        """The JSON document ``/statusz`` serves and the status file holds."""
        now = time.time()
        doc = {
            "schema": 1,
            "kind": "repro-status",
            "role": self.role,
            "run_id": self.run_id,
            "pid": os.getpid(),
            "ts": round(now, 6),
            "uptime_s": round(now - self.started_at, 3),
            "tasks": {
                "total": self.tasks_total,
                "done": self.tasks_done,
                "failed": self.tasks_failed,
                "active": {
                    name: round(now - started, 3)
                    for name, started in sorted(self.active.items())
                },
            },
            "throughput_per_s": round(self.throughput(), 4),
            "eta_s": (
                None if (eta := self.eta_seconds()) is None else round(eta, 1)
            ),
            "supervisor": {
                "queue_depth": self.queue_depth,
                "workers": self.workers,
                "retries": self.retries,
                "timeouts": self.timeouts,
                "respawns": self.respawns,
            },
            "serve": {
                "requests": self.requests,
                "in_flight": self.in_flight,
                "dedup_joins": self.dedup_joins,
                "shed": self.shed,
            },
            "cache": dict(self.cache),
        }
        if self.extra:
            doc["extra"] = {k: v for k, v in sorted(self.extra.items())}
        return doc

    # --------------------------------------------------------------- writes
    def write(self) -> Optional[str]:
        """Atomically mirror the snapshot to the status file, if configured."""
        if self.status_path is None:
            return None
        import json

        atomic_write_text(
            self.status_path,
            json.dumps(self.snapshot(), indent=1, sort_keys=True) + "\n",
        )
        self._last_write = time.time()
        return self.status_path

    def maybe_write(self, min_interval: float = WRITE_INTERVAL_S) -> Optional[str]:
        """Rate-limited :meth:`write` for call sites inside loops."""
        if self.status_path is None:
            return None
        if time.time() - self._last_write < min_interval:
            return None
        return self.write()


#: Process-global beacon — always present so update calls never branch on
#: configuration; an unconfigured beacon just accumulates in memory.
_BEACON = Beacon()


def get_beacon() -> Beacon:
    return _BEACON


def configure_beacon(
    role: str = "runner",
    run_id: Optional[str] = None,
    status_path: Optional[str] = None,
) -> Beacon:
    """Replace the global beacon with a fresh, possibly file-backed one."""
    global _BEACON
    _BEACON = Beacon(role=role, run_id=run_id, status_path=status_path)
    return _BEACON


def reset_beacon() -> Beacon:
    """Back to an in-memory-only beacon (tests)."""
    return configure_beacon()
