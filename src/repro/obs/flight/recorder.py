"""Flight recorder: a bounded ring of recent telemetry, dumped on faults.

The tracer and the JSONL log already *produce* everything a post-mortem
needs — but only when a run opted into ``--trace``/``--log-file``, which
the one-in-a-thousand fuzz or DSE failure never did.  The flight recorder
closes that gap the way avionics do: every process keeps the last N spans
and log events in a ``collections.deque`` ring (O(1) appends, bounded
memory), and on a fault the ring is dumped atomically to
``results/<run_id>/flightrec-<reason>-<pid>-<seq>.json``.

Dump triggers (callers invoke :func:`maybe_dump`):

- ``audit-fault`` — a trace invariant tripped (:class:`AuditFault`);
- ``exception`` — an unhandled exception escaped the harness;
- ``supervisor-timeout`` / ``worker-death`` — the supervisor killed or
  lost a worker (the *supervisor* dumps: a SIGKILL'd worker cannot);
- ``sigusr1`` — operator-requested snapshot of a live process.

When configured, the recorder tees:

- every :class:`~repro.trace.tracer.TraceEvent` via ``Tracer.tap`` (only
  produces data while tracing is enabled — the tracer's disabled path
  stays zero-cost);
- every structured log record via ``LogState.tee`` (records down to
  ``debug``, even with no JSONL sink configured).

Unconfigured, nothing is hooked and nothing is paid.
"""

from __future__ import annotations

import json
import os
import signal
import time
from collections import deque
from typing import Deque, List, Optional

from repro.resilience.atomic import atomic_write_text

__all__ = [
    "FlightRecorder",
    "configure_recorder",
    "get_recorder",
    "maybe_dump",
    "reset_recorder",
]

#: Default ring capacity (spans + log records each keep their own ring).
DEFAULT_CAPACITY = 512


class FlightRecorder:
    """Bounded ring buffers of recent spans and log events, dump-on-demand."""

    def __init__(self, run_dir: Optional[str] = None, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError(f"flight recorder capacity must be > 0, got {capacity}")
        self.run_dir = run_dir
        self.capacity = capacity
        self._spans: Deque[dict] = deque(maxlen=capacity)
        self._logs: Deque[dict] = deque(maxlen=capacity)
        self._dropped_spans = 0
        self._dropped_logs = 0
        self._seq = 0
        self.dumps: List[str] = []

    # ----------------------------------------------------------------- tees
    def record_event(self, event) -> None:
        """``Tracer.tap`` target: retain one trace event (Chrome dict form)."""
        if len(self._spans) == self._spans.maxlen:
            self._dropped_spans += 1
        self._spans.append(event.to_chrome())

    def record_log(self, record: dict) -> None:
        """``LogState.tee`` target: retain one structured log record."""
        if len(self._logs) == self._logs.maxlen:
            self._dropped_logs += 1
        self._logs.append(dict(record))

    # ---------------------------------------------------------------- dumps
    def payload(self, reason: str, extra: Optional[dict] = None) -> dict:
        """The dump document: ring contents + enough context to orient."""
        doc = {
            "schema": 1,
            "kind": "flight-recorder",
            "reason": reason,
            "pid": os.getpid(),
            "ts": round(time.time(), 6),
            "capacity": self.capacity,
            "dropped": {"spans": self._dropped_spans, "logs": self._dropped_logs},
            "spans": list(self._spans),
            "logs": list(self._logs),
        }
        if extra:
            doc["extra"] = dict(extra)
        return doc

    def dump(self, reason: str, extra: Optional[dict] = None) -> Optional[str]:
        """Atomically write the ring to ``<run_dir>/flightrec-*.json``.

        Returns the path written, or ``None`` when no ``run_dir`` is
        configured (the recorder can still be inspected in-process).
        A reason is slugged into the filename so one process can leave
        several distinct dumps (``exception`` then ``sigusr1``...).
        """
        if self.run_dir is None:
            return None
        self._seq += 1
        slug = "".join(c if c.isalnum() else "-" for c in reason.lower()).strip("-")
        name = f"flightrec-{slug or 'dump'}-{os.getpid()}-{self._seq:03d}.json"
        path = os.path.join(self.run_dir, name)
        text = json.dumps(self.payload(reason, extra), indent=1, sort_keys=True)
        atomic_write_text(path, text + "\n")
        self.dumps.append(path)
        return path


#: Process-global recorder; ``None`` until :func:`configure_recorder` runs.
_RECORDER: Optional[FlightRecorder] = None


def get_recorder() -> Optional[FlightRecorder]:
    return _RECORDER


def configure_recorder(
    run_dir: Optional[str] = None,
    capacity: int = DEFAULT_CAPACITY,
    install_signal: bool = True,
) -> FlightRecorder:
    """Install a process-global recorder and hook it into tracer + logs.

    Call *after* :func:`repro.obs.log.configure` — ``configure`` replaces
    the log state wholesale, which would drop the tee installed here.
    With ``install_signal`` (default) a ``SIGUSR1`` handler dumps the ring
    on demand; pass ``False`` in threads or tests where signal handlers
    are off-limits.
    """
    global _RECORDER
    recorder = FlightRecorder(run_dir=run_dir, capacity=capacity)
    _RECORDER = recorder

    from repro.obs import log as obs_log
    from repro.trace import tracer as trace_tracer

    obs_log.get_state().tee = recorder.record_log
    trace_tracer.get_tracer().tap = recorder.record_event

    if install_signal:
        try:
            signal.signal(signal.SIGUSR1, _on_sigusr1)
        except (ValueError, AttributeError, OSError):
            pass  # non-main thread, or a platform without SIGUSR1
    return recorder


def reset_recorder() -> None:
    """Unhook and drop the global recorder (tests)."""
    global _RECORDER
    if _RECORDER is None:
        return
    from repro.obs import log as obs_log
    from repro.trace import tracer as trace_tracer

    state = obs_log.get_state()
    if state.tee is _RECORDER.record_log:
        state.tee = None
    tracer = trace_tracer.get_tracer()
    if tracer.tap is _RECORDER.record_event:
        tracer.tap = None
    _RECORDER = None


def maybe_dump(reason: str, extra: Optional[dict] = None) -> Optional[str]:
    """Dump the global recorder if one is configured; else a silent no-op.

    This is the call sprinkled at fault sites — it must be safe to invoke
    from ``except``/``finally`` blocks in any process, configured or not.
    """
    recorder = _RECORDER
    if recorder is None:
        return None
    try:
        return recorder.dump(reason, extra)
    except OSError:
        return None  # a post-mortem aid must never mask the original fault


def _on_sigusr1(signum, frame) -> None:
    maybe_dump("sigusr1")
