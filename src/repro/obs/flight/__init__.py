"""Flight observability: crash recorder, status beacon, live ops console.

Three small pieces that compose the tracer/log primitives of PRs 2-3 into
the end-to-end layer long-running work was missing:

- :mod:`repro.obs.flight.recorder` — a bounded ring buffer of recent
  spans and log events per process, dumped atomically to
  ``results/<run_id>/flightrec-*.json`` on faults (AuditFault, supervisor
  timeout/kill, unhandled exception) or on ``SIGUSR1`` — post-mortems of
  rare fuzz/DSE failures without re-running under ``--trace``;
- :mod:`repro.obs.flight.beacon` — always-on in-process progress counters
  (attribute bumps, no I/O) that the runner, supervisor and serve daemon
  update, optionally mirrored to an atomic status file for external
  observers;
- :mod:`repro.obs.flight.top` — ``repro top``: a live (or ``--once``)
  text view of active requests, queue depths, worker health, cache hit
  rates and sweep progress with a rolling-throughput ETA, reading either
  a beacon status file or a serve daemon's ``/statusz`` endpoint.

Everything is zero-overhead-when-off: the recorder hooks the tracer/log
tees only when configured, and the beacon performs no filesystem work
unless given a status path.
"""

from .beacon import Beacon, configure_beacon, get_beacon, reset_beacon
from .recorder import (
    FlightRecorder,
    configure_recorder,
    get_recorder,
    maybe_dump,
    reset_recorder,
)

__all__ = [
    "Beacon",
    "configure_beacon",
    "get_beacon",
    "reset_beacon",
    "FlightRecorder",
    "configure_recorder",
    "get_recorder",
    "maybe_dump",
    "reset_recorder",
]
