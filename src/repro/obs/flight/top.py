"""``repro top`` — live ops console for runs and the serve daemon.

Reads a beacon status document from either:

- a **status file** (``--status-file``) the runner/supervisor mirrors via
  :meth:`repro.obs.flight.beacon.Beacon.maybe_write`, or
- a serve daemon's ``/statusz`` endpoint (``--url http://host:port``).

and renders a compact text dashboard: sweep progress with rolling
throughput and ETA, active tasks with ages, supervisor health (queue
depth, workers, retries/timeouts/respawns), serve load (in-flight,
dedup joins, shed requests) and cache hit rates per tier.

``--once`` prints a single frame and exits (CI smoke / scripting);
otherwise the view refreshes every ``--interval`` seconds, using curses
when stdout is a terminal and plain reprints when it is not (or with
``--plain``).  Pure stdlib, read-only: ``repro top`` never writes
anything, so pointing it at a live run is always safe.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request
from typing import List, Optional

__all__ = ["render_status", "read_status", "top_main"]


def read_status(
    status_file: Optional[str] = None, url: Optional[str] = None, timeout: float = 2.0
) -> dict:
    """Load one status document; raises ``RuntimeError`` with a clear cause."""
    if status_file is not None:
        try:
            with open(status_file, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise RuntimeError(f"cannot read status file {status_file}: {exc}") from exc
        source = status_file
    elif url is not None:
        target = url.rstrip("/") + "/statusz"
        try:
            with urllib.request.urlopen(target, timeout=timeout) as response:
                text = response.read().decode("utf-8")
        except (urllib.error.URLError, OSError) as exc:
            raise RuntimeError(f"cannot fetch {target}: {exc}") from exc
        source = target
    else:
        raise RuntimeError("one of --status-file / --url is required")
    try:
        doc = json.loads(text)
    except ValueError as exc:
        raise RuntimeError(f"malformed status JSON from {source}: {exc}") from exc
    if not isinstance(doc, dict):
        raise RuntimeError(f"status document from {source} is not a JSON object")
    return doc


def _bar(done: int, total: int, width: int = 30) -> str:
    if total <= 0:
        return "-" * width
    filled = int(round(width * min(done, total) / total))
    return "#" * filled + "-" * (width - filled)


def _fmt_eta(eta_s) -> str:
    if eta_s is None:
        return "--"
    eta_s = float(eta_s)
    if eta_s >= 3600:
        return f"{eta_s / 3600:.1f}h"
    if eta_s >= 60:
        return f"{eta_s / 60:.1f}m"
    return f"{eta_s:.0f}s"


def render_status(doc: dict, now: Optional[float] = None) -> str:
    """One dashboard frame for a beacon snapshot (pure: dict in, str out)."""
    now = time.time() if now is None else now
    lines: List[str] = []
    role = doc.get("role", "?")
    run_id = doc.get("run_id") or "-"
    age = now - float(doc.get("ts", now))
    stale = "  [STALE]" if age > 10.0 else ""
    lines.append(
        f"repro top · role={role} run={run_id} pid={doc.get('pid', '?')} "
        f"up={_fmt_eta(doc.get('uptime_s'))} (status {age:.1f}s old){stale}"
    )

    tasks = doc.get("tasks", {})
    total, done = int(tasks.get("total", 0)), int(tasks.get("done", 0))
    failed = int(tasks.get("failed", 0))
    if total or done:
        pct = 100.0 * done / total if total else 0.0
        lines.append(
            f"sweep   [{_bar(done, total)}] {done}/{total} ({pct:.0f}%)"
            f"  failed={failed}  rate={doc.get('throughput_per_s', 0)}/s"
            f"  eta={_fmt_eta(doc.get('eta_s'))}"
        )
    active = tasks.get("active", {})
    if active:
        oldest = sorted(active.items(), key=lambda kv: -float(kv[1]))[:8]
        summary = "  ".join(f"{name}({age_s:.0f}s)" for name, age_s in oldest)
        lines.append(f"active  {len(active)}: {summary}")

    sup = doc.get("supervisor", {})
    if any(sup.get(k) for k in ("queue_depth", "workers", "retries", "timeouts", "respawns")):
        lines.append(
            f"pool    queue={sup.get('queue_depth', 0)} workers={sup.get('workers', 0)}"
            f" retries={sup.get('retries', 0)} timeouts={sup.get('timeouts', 0)}"
            f" respawns={sup.get('respawns', 0)}"
        )

    serve = doc.get("serve", {})
    if any(serve.get(k) for k in ("requests", "in_flight", "dedup_joins", "shed")):
        line = (
            f"serve   requests={serve.get('requests', 0)}"
            f" in_flight={serve.get('in_flight', 0)}"
            f" dedup_joins={serve.get('dedup_joins', 0)} shed={serve.get('shed', 0)}"
        )
        rung = serve.get("rung") or doc.get("extra", {}).get("rung")
        if rung and rung != "full":
            line += f" rung={rung}"
        breakers = serve.get("breakers", {})
        if breakers.get("open"):
            line += f" breakers_open={len(breakers['open'])}"
        worker = serve.get("worker")
        if worker:
            line += f" worker={worker.get('index')}/{worker.get('configured')}"
        lines.append(line)

    cache = doc.get("cache", {})
    probes = sum(int(v) for v in cache.values())
    if probes:
        hits = probes - int(cache.get("miss", 0))
        parts = " ".join(
            f"{tier}={cache.get(tier, 0)}"
            for tier in ("exact", "canonical", "persistent", "miss")
        )
        lines.append(f"cache   {parts}  hit-rate={100.0 * hits / probes:.1f}%")

    extra = doc.get("extra", {})
    if extra:
        parts = " ".join(f"{k}={v}" for k, v in sorted(extra.items()))
        lines.append(f"extra   {parts}")
    return "\n".join(lines)


def _loop_plain(args) -> int:
    while True:
        frame = render_status(read_status(args.status_file, args.url))
        print(frame)
        print()
        time.sleep(args.interval)


def _loop_curses(args) -> int:
    import curses

    def _run(screen):
        curses.curs_set(0)
        screen.nodelay(True)
        while True:
            try:
                frame = render_status(read_status(args.status_file, args.url))
            except RuntimeError as exc:
                frame = f"repro top · {exc}"
            screen.erase()
            height, width = screen.getmaxyx()
            for row, line in enumerate(frame.splitlines()[: height - 1]):
                screen.addnstr(row, 0, line, width - 1)
            screen.refresh()
            deadline = time.time() + args.interval
            while time.time() < deadline:
                key = screen.getch()
                if key in (ord("q"), 27):
                    return
                time.sleep(0.05)

    curses.wrapper(_run)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro top", description="Live ops console for repro runs and serve."
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--status-file", help="beacon status file written by a runner/supervisor"
    )
    source.add_argument(
        "--url", help="base URL of a repro serve daemon (reads /statusz)"
    )
    parser.add_argument(
        "--once", action="store_true", help="print one frame and exit (CI smoke)"
    )
    parser.add_argument(
        "--interval", type=float, default=1.0, help="refresh period in seconds"
    )
    parser.add_argument(
        "--plain",
        action="store_true",
        help="reprint frames instead of a curses screen (default off-tty)",
    )
    return parser


def top_main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.once:
        try:
            print(render_status(read_status(args.status_file, args.url)))
        except RuntimeError as exc:
            print(f"repro top: {exc}", file=sys.stderr)
            return 1
        return 0
    try:
        if args.plain or not sys.stdout.isatty():
            return _loop_plain(args)
        try:
            return _loop_curses(args)
        except ImportError:
            return _loop_plain(args)
    except KeyboardInterrupt:
        return 0
    except RuntimeError as exc:
        print(f"repro top: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(top_main())
