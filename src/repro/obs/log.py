"""Structured logging for the harness: JSONL events + console rendering.

The harness used to talk to the operator exclusively through bare
``print()``; that made every run a black box the moment stdout scrolled
away.  This module gives it two deliberate channels instead:

- **Reports** (:func:`console`) — the verbatim, human-facing experiment
  output.  At default settings this is byte-identical to the old
  ``print()`` path (same stream, same bytes), so checked-in artifacts and
  test expectations are untouched; ``--quiet`` suppresses it while
  artifacts keep being written.
- **Events** (:func:`event` and the :func:`debug`/:func:`info`/
  :func:`warning`/:func:`error` helpers) — structured diagnostics.  Each
  event is a name plus flat key/value fields.  Events render to *stderr*
  when they clear ``--log-level`` (default ``warning``, so a default run
  prints nothing it did not print before), and **every** event down to
  ``debug`` is appended to the ``--log-file`` JSONL sink when one is
  configured, one JSON object per line::

      {"ts": 1722907200.123, "level": "info", "event": "runner.start",
       "pid": 4242, "run_id": "run-...", "experiments": ["fig7"]}

The sink is opened line-buffered in append mode, so pool workers forked
under ``--jobs N`` inherit it and their events land in the same file
(each event is a single ``write()`` of one complete line).

Like :mod:`repro.trace`, the disabled path is engineered to cost nothing:
with no sink and the default level, an event call is one integer compare.
"""

from __future__ import annotations

import dataclasses
import io
import json
import os
import sys
import time
from typing import Any, Callable, Dict, List, Optional

from repro.trace import context as _trace_context

__all__ = [
    "LEVELS",
    "LogState",
    "configure",
    "shutdown",
    "get_state",
    "level_value",
    "event",
    "debug",
    "info",
    "warning",
    "error",
    "console",
]

#: Recognised level names, lowest first.  Numeric values follow stdlib
#: ``logging`` so the two scales interoperate if a caller mixes them.
LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warning": 30, "error": 40}

#: Console threshold of a default run — diagnostics stay silent unless the
#: operator asks, keeping default stdout/stderr exactly as before.
DEFAULT_LEVEL = "warning"


def level_value(level: str) -> int:
    """Numeric value of a level name (raises ``KeyError`` on unknown names)."""
    try:
        return LEVELS[level.lower()]
    except KeyError:
        raise KeyError(
            f"unknown log level {level!r}; known: {sorted(LEVELS)}"
        ) from None


@dataclasses.dataclass
class LogState:
    """Process-wide logging configuration (swap with :func:`configure`)."""

    console_level: int = LEVELS[DEFAULT_LEVEL]
    quiet: bool = False
    sink: Optional[io.TextIOBase] = None
    sink_path: Optional[str] = None
    run_id: Optional[str] = None
    #: Events captured when a test installs a capturing state (sink-free
    #: introspection without touching the filesystem).
    capture: Optional[List[dict]] = None
    #: Optional record tee — the flight recorder's ring buffer taps here.
    #: Receives every record the sink would (down to ``debug``), even when
    #: no sink is configured.
    tee: Optional[Callable[[dict], None]] = None


_STATE = LogState()


def get_state() -> LogState:
    return _STATE


def configure(
    level: str = DEFAULT_LEVEL,
    log_file: Optional[str] = None,
    quiet: bool = False,
    run_id: Optional[str] = None,
) -> LogState:
    """(Re)configure the process-wide logging state.

    ``level`` gates stderr diagnostics only; the JSONL sink always records
    from ``debug`` up, so one flag redirects full-fidelity telemetry to a
    file without drowning the terminal.
    """
    global _STATE
    shutdown()
    sink = None
    if log_file is not None:
        sink = open(log_file, "a", buffering=1)
    _STATE = LogState(
        console_level=level_value(level),
        quiet=quiet,
        sink=sink,
        sink_path=log_file,
        run_id=run_id,
    )
    return _STATE


def shutdown() -> None:
    """Flush and close the sink; reset to the zero-cost default state."""
    global _STATE
    if _STATE.sink is not None:
        try:
            _STATE.sink.close()
        except OSError:
            pass
    _STATE = LogState()


def _jsonable(value: Any) -> Any:
    """Coerce a field value to something ``json`` can serialise."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


def event(name: str, level: str = "info", **fields: Any) -> None:
    """Emit one structured event through every configured channel."""
    state = _STATE
    value = LEVELS.get(level, LEVELS["info"])
    if (
        state.sink is None
        and state.capture is None
        and state.tee is None
        and value < state.console_level
    ):
        return  # the zero-cost path of an unconfigured run
    record = {"ts": round(time.time(), 6), "level": level, "event": name, "pid": os.getpid()}
    if state.run_id is not None:
        record["run_id"] = state.run_id
    ctx = _trace_context.current()
    if ctx is not None:
        record.update(ctx.ids())
    for key, val in fields.items():
        record[key] = _jsonable(val)
    if state.capture is not None:
        state.capture.append(record)
    if state.tee is not None:
        state.tee(record)
    if state.sink is not None:
        state.sink.write(json.dumps(record, separators=(",", ":")) + "\n")
    if value >= state.console_level:
        parts = " ".join(f"{k}={record[k]}" for k in fields)
        stamp = time.strftime("%H:%M:%S", time.localtime(record["ts"]))
        print(f"[{stamp}] {level:<7} {name} {parts}".rstrip(), file=sys.stderr)


def debug(name: str, **fields: Any) -> None:
    event(name, level="debug", **fields)


def info(name: str, **fields: Any) -> None:
    event(name, level="info", **fields)


def warning(name: str, **fields: Any) -> None:
    event(name, level="warning", **fields)


def error(name: str, **fields: Any) -> None:
    event(name, level="error", **fields)


def console(text: str = "", *, kind: str = "report") -> None:
    """Verbatim user-facing output (reports, tables, summaries).

    Prints ``text`` to stdout exactly as :func:`print` would — the default
    path is byte-identical to the pre-logging harness — unless ``--quiet``
    is active, in which case the text is dropped from the terminal but a
    ``console`` event still reaches the JSONL sink, so a quiet run's file
    log remains complete.
    """
    state = _STATE
    if state.sink is not None or state.capture is not None or state.tee is not None:
        event("console", level="debug", kind=kind, chars=len(text))
    if not state.quiet:
        print(text)
