"""Pricing one (design point, workload) task: performance and silicon cost.

**Performance** comes from the existing simulators — :class:`TPUSim` for
single-array points, :func:`simulate_conv_dual_mxu` for multi-MXU points —
over every conv layer of the workload.  Timings flow through the memo
cache and, when a persistent store is attached (``--store``), its on-disk
tier, so re-evaluating a point after a crash is a read, not a simulation.

**Cost** is a die-area proxy with the right structure, not a sign-off
floorplan: the SRAM term reuses the calibrated OpenRAM-substitute macro
model (Fig 16b's own area curve, summed over the vector memories), the
compute term charges a fixed area per MAC unit per array, and the HBM
term charges PHY/controller area per GB/s.  The constants are stated
here, used consistently for every point, and only *ratios* matter to the
Pareto frontier — exactly the paper's own Fig 16 methodology.

Everything returned is a plain JSON document of floats/ints whose bytes
are deterministic (IEEE doubles, ``repr`` round-trip), which is what lets
the frontier artifact be compared byte-for-byte across runs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ..errors import ConfigError
from .space import DesignPoint

__all__ = [
    "PE_AREA_MM2",
    "HBM_PHY_MM2_PER_GBPS",
    "workload_layers",
    "parse_workload",
    "point_cost_mm2",
    "evaluate_task",
]

#: Area of one MAC unit (bf16 multiply + fp32 accumulate, 45 nm-class),
#: mm^2 — same order as published systolic-array breakdowns; a proxy.
PE_AREA_MM2 = 5e-4
#: HBM PHY + controller area per GB/s of peak bandwidth, mm^2 — a proxy.
HBM_PHY_MM2_PER_GBPS = 1.5e-2


def parse_workload(token: str) -> Tuple[str, int]:
    """``"vgg16@8"`` -> ``("vgg16", 8)``; batch defaults to 8."""
    name, _, batch = token.partition("@")
    name = name.strip()
    if not name:
        raise ConfigError("empty workload name", field="workload", value=token)
    try:
        batch_n = int(batch) if batch else 8
    except ValueError:
        raise ConfigError(
            "workload batch must be an integer", field="workload", value=token
        ) from None
    if batch_n <= 0:
        raise ConfigError(
            "workload batch must be positive", field="workload", value=token
        )
    return name, batch_n


def workload_layers(token: str, quick: bool = False):
    """The conv layers one workload token names (validated eagerly)."""
    from ..workloads.networks import network

    name, batch = parse_workload(token)
    try:
        layers = network(name, batch)
    except KeyError as err:
        raise ConfigError(
            str(err.args[0]) if err.args else "unknown network",
            field="workload", value=token,
        ) from None
    if quick:
        layers = layers[:4]
    return layers


def point_cost_mm2(point: DesignPoint) -> Dict[str, float]:
    """The die-area proxy, split by component (see module docstring)."""
    from ..memory.sram import SRAMModel

    config = point.to_config()
    sram = SRAMModel(config.sram)
    per_memory_bytes = config.per_memory_bytes
    sram_mm2 = config.num_vector_memories * sram.area_mm2(
        per_memory_bytes, config.sram_word_bytes
    )
    pe_mm2 = PE_AREA_MM2 * config.peak_macs_per_cycle * point.mxu
    hbm_mm2 = HBM_PHY_MM2_PER_GBPS * float(point.hbm_gbps)
    return {
        "sram_mm2": sram_mm2,
        "pe_mm2": pe_mm2,
        "hbm_mm2": hbm_mm2,
        "cost_mm2": sram_mm2 + pe_mm2 + hbm_mm2,
    }


def evaluate_task(
    point: DesignPoint, workload: str, quick: bool = False
) -> Dict[str, Any]:
    """Price one (point, workload) pair; returns the task's result payload.

    The payload is pure data (no timestamps, no host identity) — the same
    task evaluated anywhere, any number of times, yields the same bytes.
    """
    layers = workload_layers(workload, quick=quick)
    config = point.to_config()
    total_cycles = 0.0
    total_macs = 0
    if point.mxu <= 1:
        from ..systolic.simulator import TPUSim

        sim = TPUSim(config)
        for layer in layers:
            result = sim.simulate_conv(layer)
            total_cycles += result.cycles
            total_macs += result.macs
    else:
        from ..systolic.dual_mxu import simulate_conv_dual_mxu

        for layer in layers:
            result = simulate_conv_dual_mxu(
                layer, arrays=point.mxu, config=config
            )
            total_cycles += result.cycles
            total_macs += result.macs
    tflops = (
        2 * total_macs * config.clock_ghz / total_cycles / 1e3
        if total_cycles > 0
        else 0.0
    )
    peak = config.peak_macs_per_cycle * point.mxu
    utilization = total_macs / (peak * total_cycles) if total_cycles > 0 else 0.0
    return {
        "point": point.to_doc(),
        "workload": workload,
        "quick": bool(quick),
        "layers": len(layers),
        "cycles": total_cycles,
        "macs": total_macs,
        "tflops": tflops,
        "utilization": utilization,
    }
