"""The design space: axes, points, feasibility, and adaptive refinement.

A :class:`DesignPoint` fixes five knobs of the accelerator (Fig 16's two
axes plus the three the paper's closing remarks point at):

- ``array``       — systolic array size (square, vector memories track rows);
- ``sram_mb``     — unified on-chip SRAM capacity in MiB;
- ``word_elems``  — vector-memory word width in elements (Fig 16b's axis);
- ``hbm_gbps``    — HBM peak bandwidth;
- ``mxu``         — systolic arrays sharing the vector memories (the
  TPU-v3 move; feasible only while ``2*mxu/word_elems <= 1``).

A :class:`DesignSpace` holds the *allowed values* per axis as sorted
tuples; every point is an index vector into those tuples, which is what
makes **adaptive refinement** well-defined: given the current Pareto
frontier, :meth:`DesignSpace.refine` proposes (a) the component-wise index
midpoint of each cost-adjacent frontier pair and (b) the ±1 axis
neighbours of every frontier point — bisecting toward the frontier instead
of pricing the dense grid.  Everything is deterministic: candidate order
is sorted by ``point_id``, infeasible and already-seen points are dropped,
and no randomness enters, so a sharded chaotic sweep plans exactly the
rounds a serial fault-free sweep plans.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigError

__all__ = ["DesignPoint", "DesignSpace", "PRESETS", "SPACE_SCHEMA"]

SPACE_SCHEMA = 1

AXES = ("array", "sram_mb", "word_elems", "hbm_gbps", "mxu")


@dataclasses.dataclass(frozen=True, order=True)
class DesignPoint:
    """One accelerator configuration under study."""

    array: int
    sram_mb: int
    word_elems: int
    hbm_gbps: int
    mxu: int

    @property
    def point_id(self) -> str:
        """Stable, filesystem-safe identity, e.g. ``a128-s32-w8-h700-x1``."""
        return (
            f"a{self.array}-s{self.sram_mb}-w{self.word_elems}"
            f"-h{self.hbm_gbps}-x{self.mxu}"
        )

    def feasible(self) -> bool:
        """Port budget + geometry sanity (infeasible points are never
        scheduled — they are excluded at planning time, not quarantined)."""
        if self.mxu < 1:
            return False
        if 2 * self.mxu / self.word_elems > 1.0 and self.mxu > 1:
            return False  # vector-memory ports cannot feed that many arrays
        # Each vector memory must hold at least one word.
        per_memory = self.sram_mb * 1024 * 1024 // self.array
        return per_memory >= self.word_elems * 4

    def to_config(self):
        """The :class:`~repro.systolic.config.TPUConfig` this point names."""
        import dataclasses as dc

        from ..systolic.config import TPU_V2

        config = TPU_V2.with_array(self.array).with_word_elems(self.word_elems)
        return dc.replace(
            config,
            unified_sram_bytes=self.sram_mb * 1024 * 1024,
            hbm=dc.replace(
                config.hbm, peak_bandwidth_gbps=float(self.hbm_gbps)
            ),
        )

    def to_doc(self) -> Dict[str, int]:
        return {axis: getattr(self, axis) for axis in AXES}

    @classmethod
    def from_doc(cls, doc: Dict[str, int]) -> "DesignPoint":
        return cls(**{axis: int(doc[axis]) for axis in AXES})


@dataclasses.dataclass(frozen=True)
class DesignSpace:
    """Sorted allowed values per axis; points are index vectors into them."""

    array: Tuple[int, ...]
    sram_mb: Tuple[int, ...]
    word_elems: Tuple[int, ...]
    hbm_gbps: Tuple[int, ...]
    mxu: Tuple[int, ...]

    def __post_init__(self) -> None:
        for axis in AXES:
            values = getattr(self, axis)
            if not values:
                raise ConfigError(
                    "design-space axis needs at least one value",
                    field=axis, value=values,
                )
            if list(values) != sorted(set(values)):
                raise ConfigError(
                    "axis values must be strictly increasing",
                    field=axis, value=values,
                )
            if any(v <= 0 for v in values):
                raise ConfigError(
                    "axis values must be positive", field=axis, value=values
                )

    # ------------------------------------------------------------ identity
    def to_doc(self) -> Dict[str, List[int]]:
        return {axis: list(getattr(self, axis)) for axis in AXES}

    @classmethod
    def from_doc(cls, doc: Dict[str, Sequence[int]]) -> "DesignSpace":
        return cls(**{axis: tuple(int(v) for v in doc[axis]) for axis in AXES})

    # -------------------------------------------------------------- points
    def axis_values(self, axis: str) -> Tuple[int, ...]:
        return getattr(self, axis)

    def indices_of(self, point: DesignPoint) -> Optional[Tuple[int, ...]]:
        """The index vector of ``point``, or None if off-grid."""
        indices = []
        for axis in AXES:
            values = self.axis_values(axis)
            value = getattr(point, axis)
            if value not in values:
                return None
            indices.append(values.index(value))
        return tuple(indices)

    def point_at(self, indices: Sequence[int]) -> DesignPoint:
        return DesignPoint(
            **{
                axis: self.axis_values(axis)[index]
                for axis, index in zip(AXES, indices)
            }
        )

    def seed_points(self) -> List[DesignPoint]:
        """Round 0: the coarse corner grid — first/mid/last index of every
        axis (deduplicated for short axes), filtered to feasible points."""
        corner_indices = []
        for axis in AXES:
            n = len(self.axis_values(axis))
            corner_indices.append(sorted({0, (n - 1) // 2, n - 1}))
        points = {
            self.point_at(indices)
            for indices in itertools.product(*corner_indices)
        }
        return sorted(
            (p for p in points if p.feasible()), key=lambda p: p.point_id
        )

    # ---------------------------------------------------------- refinement
    def refine(
        self,
        frontier: Sequence[DesignPoint],
        seen: Iterable[DesignPoint],
    ) -> List[DesignPoint]:
        """Bisect toward the frontier: the next round's candidate points.

        ``frontier`` must be ordered (the engine passes it cost-ascending);
        candidates are (a) component-wise index midpoints of adjacent
        frontier pairs and (b) ±1 axis neighbours of each frontier point —
        the local moves that can reveal a dominating configuration between
        or beside the current optima.  Deterministic: output is sorted by
        ``point_id`` and excludes infeasible, off-grid and ``seen`` points.
        """
        seen_set = set(seen)
        candidates = set()

        frontier_indices = [
            indices
            for indices in (self.indices_of(p) for p in frontier)
            if indices is not None
        ]
        for left, right in zip(frontier_indices, frontier_indices[1:]):
            if left == right:
                continue
            mid = tuple((a + b) // 2 for a, b in zip(left, right))
            candidates.add(mid)
        for indices in frontier_indices:
            for axis_pos, axis in enumerate(AXES):
                for step in (-1, 1):
                    neighbour = indices[axis_pos] + step
                    if 0 <= neighbour < len(self.axis_values(axis)):
                        moved = list(indices)
                        moved[axis_pos] = neighbour
                        candidates.add(tuple(moved))

        fresh = {
            point
            for point in (self.point_at(indices) for indices in candidates)
            if point.feasible() and point not in seen_set
        }
        return sorted(fresh, key=lambda p: p.point_id)


#: Named spaces: ``paper`` spans the Fig 16 axes at production scale,
#: ``smoke`` is the CI-sized space the chaos e2e and `make dse-smoke` use.
PRESETS: Dict[str, DesignSpace] = {
    "paper": DesignSpace(
        array=(32, 64, 128, 256, 512),
        sram_mb=(8, 16, 32, 64, 128),
        word_elems=(2, 4, 8, 16, 32),
        hbm_gbps=(100, 200, 400, 700, 1000, 1400),
        mxu=(1, 2),
    ),
    "quick": DesignSpace(
        array=(64, 128, 256),
        sram_mb=(16, 32, 64),
        word_elems=(4, 8, 16),
        hbm_gbps=(200, 700, 1400),
        mxu=(1, 2),
    ),
    "smoke": DesignSpace(
        array=(64, 128),
        sram_mb=(16, 32),
        word_elems=(8,),
        hbm_gbps=(400, 700),
        mxu=(1,),
    ),
}
