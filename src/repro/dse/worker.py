"""The sweep worker: claim → evaluate → journal, forever, crash-safely.

A worker is a loop over the on-disk queue and nothing else — it shares no
memory with the coordinator, so the coordinator respawning it (or chaos
killing it) loses at most one in-flight evaluation, which the lease
protocol hands to a survivor after the TTL.

Per task: claim the lease (skipping tasks someone else holds), fire any
injected chaos fault, evaluate the (design point, workload) pair, append
the deterministic result to the task's shard journal, release the lease.
Failures append to ``failures.jsonl`` and move on — deciding whether a
task is *poison* is the coordinator's job, not the worker's.

Liveness is reported two ways: an atomic per-worker heartbeat file after
every task (read by the coordinator's monitor and ``repro top``), and a
flight-recorder dump whenever this worker *steals* a lease — the moment
that proves another worker died mid-task and post-mortem context is worth
keeping.
"""

from __future__ import annotations

import pathlib
import time
from typing import Any, Dict, Optional

from ..errors import classify_error
from ..obs import log as obs_log
from ..obs.flight import configure_recorder, maybe_dump
from .chaos import ChaosPlan
from .evaluate import evaluate_task
from .queue import WorkQueue
from .space import DesignPoint

__all__ = ["run_worker", "worker_entry"]

#: Idle poll interval — how often a worker with nothing claimable re-reads
#: the task journal (the coordinator appends new rounds to it).
POLL_S = 0.2


def run_worker(
    root,
    worker_id: str,
    lease_ttl_s: float,
    chaos: Optional[ChaosPlan] = None,
    store_dir: Optional[str] = None,
    poll_s: float = POLL_S,
    max_failures: Optional[int] = None,
) -> int:
    """The worker main loop; returns the number of tasks completed.

    ``max_failures`` mirrors the coordinator's quarantine cap: a task
    already at the cap is *skipped*, not retried — it is awaiting the
    coordinator's poison verdict, and hammering it would only inflate the
    failure journal while the verdict is pending.
    """
    queue = WorkQueue(root)
    queue.ensure_dirs()
    if store_dir:
        from ..store import attach

        attach(store_dir)
    completed = 0
    queue.heartbeat(worker_id, state="starting", done=completed)
    while not queue.stop_requested():
        tasks = queue.load_tasks()
        done = queue.load_results()
        parked = _quarantined_ids(queue.root)
        pending = sorted(
            tid for tid in tasks if tid not in done and tid not in parked
        )
        if not pending:
            queue.heartbeat(worker_id, state="idle", done=completed)
            time.sleep(poll_s)
            continue
        claimed_any = False
        for task_id in pending:
            if queue.stop_requested():
                break
            if max_failures is not None:
                recorded = len(queue.load_failures().get(task_id, []))
                if recorded >= max_failures:
                    continue  # awaiting the coordinator's poison verdict
            lease = queue.claim(task_id, worker_id, lease_ttl_s)
            if lease is None:
                continue  # someone else holds it
            claimed_any = True
            if lease.generation > 1:
                # This worker just reclaimed a dead/hung owner's task —
                # keep the post-mortem context around.
                maybe_dump(
                    "lease-reclaim",
                    {
                        "task": task_id,
                        "owner": worker_id,
                        "generation": lease.generation,
                    },
                )
            queue.heartbeat(
                worker_id, state="running", task=task_id, done=completed
            )
            attempt = len(queue.load_failures().get(task_id, [])) + 1
            try:
                if chaos is not None:
                    chaos.apply(queue, task_id, attempt, lease.generation)
                payload = _evaluate(tasks[task_id].payload)
                queue.complete(task_id, payload)
                completed += 1
            except KeyboardInterrupt:
                queue.release(task_id, worker_id)
                raise
            except Exception as err:  # journal and move on — never die
                kind = classify_error(err).__name__
                queue.record_failure(
                    task_id, worker_id, attempt, kind=kind, error=str(err)
                )
                obs_log.warning(
                    "dse.task.failed",
                    task=task_id, attempt=attempt, kind=kind, error=str(err),
                )
                maybe_dump(
                    "dse-task-failure",
                    {"task": task_id, "attempt": attempt, "kind": kind},
                )
            finally:
                queue.release(task_id, worker_id)
        if not claimed_any:
            time.sleep(poll_s)  # everything pending is leased elsewhere
    queue.heartbeat(worker_id, state="stopped", done=completed)
    return completed


def _evaluate(payload: Dict[str, Any]) -> Dict[str, Any]:
    point = DesignPoint.from_doc(payload["point"])
    return evaluate_task(
        point, str(payload["workload"]), quick=bool(payload.get("quick"))
    )


def _quarantined_ids(root: pathlib.Path) -> set:
    from ..resilience.quarantine import QuarantineFile

    return set(QuarantineFile(root / "quarantine.jsonl").load())


def worker_entry(
    root: str,
    worker_id: str,
    lease_ttl_s: float,
    chaos_doc: Optional[Dict[str, Any]] = None,
    store_dir: Optional[str] = None,
    max_failures: Optional[int] = None,
) -> None:
    """Subprocess entry point (multiprocessing target)."""
    configure_recorder(run_dir=str(root), install_signal=False)
    chaos = ChaosPlan.from_doc(chaos_doc) if chaos_doc else None
    try:
        run_worker(
            root, worker_id, lease_ttl_s, chaos=chaos, store_dir=store_dir,
            max_failures=max_failures,
        )
    except KeyboardInterrupt:
        pass
