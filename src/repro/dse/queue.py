"""The sharded on-disk work queue: tasks, leases, results, failures.

Everything lives under one sweep directory and every mutation is either an
atomic replace or an fsync'd single-line append, so any process — worker
or coordinator — can be kill -9'd at any instruction and the queue state
stays readable:

- ``tasks.jsonl``            — task definitions, appended by the
  coordinator per refinement round; loaded with dedup by task id, so
  re-enqueueing on ``--resume`` is idempotent;
- ``leases/<task>.lease``    — one lease file per in-flight task
  (:mod:`repro.resilience.lease`): fsync'd, expiring, generation-fenced;
- ``results/shard-XX.jsonl`` — completed task payloads, sharded by the
  first byte of the task id's SHA-256 so four workers appending
  concurrently rarely contend on one file; loaded last-write-wins (a
  lease-steal race writes *identical* bytes twice — results are
  deterministic functions of the task);
- ``failures.jsonl``         — one record per failed attempt (the
  coordinator's quarantine evidence);
- ``workers/<id>.json``      — per-worker heartbeats (atomic replace),
  read by the coordinator's liveness monitor and by ``repro top``;
- ``STOP``                   — the shutdown sentinel workers poll.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import time
from typing import Any, Dict, List, Mapping, Optional

from ..obs import log as obs_log
from ..resilience.atomic import atomic_write_text, crash_safe_append
from ..resilience.lease import LeaseRecord, read_lease, release, renew, try_acquire

__all__ = ["TASK_SCHEMA", "Task", "WorkQueue", "task_shard"]

TASK_SCHEMA = 1

#: Result shards: first two hex digits of SHA-256(task id) — up to 256
#: append files, so concurrent workers almost never serialize on one.
_SHARD_HEX_DIGITS = 2


def task_shard(task_id: str) -> str:
    digest = hashlib.sha256(task_id.encode("utf-8")).hexdigest()
    return digest[:_SHARD_HEX_DIGITS]


def _lease_name(task_id: str) -> str:
    # Task ids are "<point_id>/<workload>"; only "/" is filesystem-hostile.
    return task_id.replace("/", "+") + ".lease"


@dataclasses.dataclass(frozen=True)
class Task:
    """One unit of work: evaluate one design point on one workload."""

    task_id: str  # "<point_id>/<workload>"
    payload: Dict[str, Any]  # {"point": {...}, "workload": str, "quick": bool}

    def to_json(self) -> str:
        return json.dumps(
            {
                "schema": TASK_SCHEMA,
                "task_id": self.task_id,
                "payload": self.payload,
            },
            sort_keys=True,
        )

    @classmethod
    def from_doc(cls, doc: Mapping[str, Any]) -> "Task":
        return cls(task_id=str(doc["task_id"]), payload=dict(doc["payload"]))


class WorkQueue:
    """All queue state under one sweep directory (see module docstring)."""

    def __init__(self, root) -> None:
        self.root = pathlib.Path(root)
        self.tasks_path = self.root / "tasks.jsonl"
        self.results_dir = self.root / "results"
        self.leases_dir = self.root / "leases"
        self.workers_dir = self.root / "workers"
        self.failures_path = self.root / "failures.jsonl"
        self.stop_path = self.root / "STOP"

    def ensure_dirs(self) -> None:
        for directory in (
            self.root, self.results_dir, self.leases_dir, self.workers_dir
        ):
            directory.mkdir(parents=True, exist_ok=True)

    # ---------------------------------------------------------------- tasks
    def add_task(self, task: Task) -> None:
        crash_safe_append(self.tasks_path, task.to_json(), fsync=True)

    def load_tasks(self) -> Dict[str, Task]:
        """``{task_id: Task}`` — dedup by id (re-enqueue is idempotent)."""
        tasks: Dict[str, Task] = {}
        for doc in self._read_jsonl(self.tasks_path, schema=TASK_SCHEMA):
            try:
                task = Task.from_doc(doc)
            except (KeyError, TypeError):
                continue
            tasks[task.task_id] = task
        return tasks

    # --------------------------------------------------------------- leases
    def lease_path(self, task_id: str) -> pathlib.Path:
        return self.leases_dir / _lease_name(task_id)

    def claim(
        self, task_id: str, owner: str, ttl_s: float
    ) -> Optional[LeaseRecord]:
        lease = try_acquire(self.lease_path(task_id), owner, ttl_s)
        if lease is not None and lease.generation > 1:
            obs_log.warning(
                "dse.lease.steal",
                task=task_id, owner=owner, generation=lease.generation,
            )
        return lease

    def renew(self, task_id: str, owner: str, ttl_s: float):
        return renew(self.lease_path(task_id), owner, ttl_s)

    def release(self, task_id: str, owner: str) -> bool:
        return release(self.lease_path(task_id), owner)

    def lease_of(self, task_id: str) -> Optional[LeaseRecord]:
        return read_lease(self.lease_path(task_id))

    # -------------------------------------------------------------- results
    def shard_path(self, task_id: str) -> pathlib.Path:
        return self.results_dir / f"shard-{task_shard(task_id)}.jsonl"

    def complete(self, task_id: str, payload: Mapping[str, Any]) -> None:
        """Append the task's deterministic result.  Safe to call twice for
        the same task (steal races): both appends carry identical payload
        bytes and the loader last-write-wins on task id."""
        record = {
            "schema": TASK_SCHEMA,
            "task_id": task_id,
            "result": dict(payload),
        }
        crash_safe_append(
            self.shard_path(task_id), json.dumps(record, sort_keys=True),
            fsync=True,
        )

    def load_results(self) -> Dict[str, Dict[str, Any]]:
        """``{task_id: result payload}`` across every shard, last write
        wins; torn/corrupt lines (a crash mid-append, or injected
        corrupt-store faults) are skipped with a warning."""
        results: Dict[str, Dict[str, Any]] = {}
        if not self.results_dir.exists():
            return results
        for shard in sorted(self.results_dir.glob("shard-*.jsonl")):
            for doc in self._read_jsonl(shard, schema=TASK_SCHEMA):
                try:
                    results[str(doc["task_id"])] = dict(doc["result"])
                except (KeyError, TypeError):
                    continue
        return results

    # ------------------------------------------------------------- failures
    def record_failure(
        self,
        task_id: str,
        owner: str,
        attempt: int,
        kind: str,
        error: str,
    ) -> None:
        record = {
            "schema": TASK_SCHEMA,
            "task_id": task_id,
            "owner": owner,
            "attempt": attempt,
            "kind": kind,
            "error": error,
        }
        crash_safe_append(
            self.failures_path, json.dumps(record, sort_keys=True), fsync=True
        )

    def load_failures(self) -> Dict[str, List[Dict[str, Any]]]:
        failures: Dict[str, List[Dict[str, Any]]] = {}
        for doc in self._read_jsonl(self.failures_path, schema=TASK_SCHEMA):
            try:
                failures.setdefault(str(doc["task_id"]), []).append(dict(doc))
            except (KeyError, TypeError):
                continue
        return failures

    # ----------------------------------------------------------- heartbeats
    def heartbeat(
        self, worker_id: str, **fields: Any
    ) -> None:
        doc = {"worker": worker_id, "pid": os.getpid(), "time": time.time()}
        doc.update(fields)
        atomic_write_text(
            self.workers_dir / f"{worker_id}.json",
            json.dumps(doc, sort_keys=True),
        )

    def load_heartbeats(self) -> Dict[str, Dict[str, Any]]:
        beats: Dict[str, Dict[str, Any]] = {}
        if not self.workers_dir.exists():
            return beats
        for path in sorted(self.workers_dir.glob("*.json")):
            try:
                doc = json.loads(path.read_text())
            except (OSError, ValueError):
                continue  # torn write or vanished file — worker will rewrite
            beats[str(doc.get("worker", path.stem))] = doc
        return beats

    # ----------------------------------------------------------------- stop
    def request_stop(self) -> None:
        atomic_write_text(self.stop_path, "stop\n")

    def stop_requested(self) -> bool:
        return self.stop_path.exists()

    def clear_stop(self) -> None:
        try:
            os.unlink(self.stop_path)
        except OSError:
            pass

    # -------------------------------------------------------------- helpers
    def _read_jsonl(self, path: pathlib.Path, schema: int):
        if not path.exists():
            return
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
                if doc.get("schema") != schema:
                    raise ValueError(f"unknown schema {doc.get('schema')!r}")
            except (ValueError, TypeError, AttributeError) as err:
                obs_log.warning(
                    "dse.queue.corrupt_record",
                    path=str(path), line=lineno, error=str(err),
                )
                continue
            yield doc
