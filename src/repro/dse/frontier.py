"""Pareto frontier over (cost, performance) + the crash-safe journal.

Aggregation: a design point's performance is its aggregate TFLOPS over the
whole workload zoo (sum of MACs over sum of cycles — the harness's own
convention), its cost the die-area proxy of :func:`repro.dse.evaluate.
point_cost_mm2`.  A point is **dominated** when another point costs no
more and performs at least as well (strictly better on one side); the
frontier is the sorted set of non-dominated points, tie-broken by
``point_id`` so the result is a pure function of the input set.

Durability: every round appends one frontier snapshot to
``frontier.jsonl`` via the fsync'd single-line append (a torn tail is
skipped on load), and the final artifact ``frontier.json`` is written
atomically with canonical JSON (sorted keys, no timestamps), so two
sweeps over the same space produce **byte-identical artifacts** no matter
how many crashes, lease steals or resumes happened in between.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from ..obs import log as obs_log
from ..resilience.atomic import atomic_write_bytes, crash_safe_append
from .evaluate import point_cost_mm2
from .space import DesignPoint, DesignSpace

__all__ = [
    "FRONTIER_SCHEMA",
    "FrontierPoint",
    "aggregate_point",
    "pareto_frontier",
    "FrontierJournal",
    "render_artifact",
    "write_artifact",
]

FRONTIER_SCHEMA = 1


@dataclasses.dataclass(frozen=True)
class FrontierPoint:
    """One evaluated design point, ready for dominance comparison."""

    point: DesignPoint
    perf_tflops: float
    cost_mm2: float
    utilization: float
    cycles: float
    macs: int
    cost_parts: Mapping[str, float]

    @property
    def point_id(self) -> str:
        return self.point.point_id

    def dominates(self, other: "FrontierPoint") -> bool:
        no_worse = (
            self.cost_mm2 <= other.cost_mm2
            and self.perf_tflops >= other.perf_tflops
        )
        strictly_better = (
            self.cost_mm2 < other.cost_mm2
            or self.perf_tflops > other.perf_tflops
        )
        return no_worse and strictly_better


def aggregate_point(
    point: DesignPoint, task_results: Iterable[Mapping[str, Any]]
) -> FrontierPoint:
    """Fold one point's per-workload task payloads into a frontier entry.

    Input order does not matter — sums are over the full set, so a point
    evaluated by four racing workers aggregates identically to one
    evaluated serially.
    """
    total_cycles = 0.0
    total_macs = 0
    for payload in task_results:
        total_cycles += float(payload["cycles"])
        total_macs += int(payload["macs"])
    config = point.to_config()
    tflops = (
        2 * total_macs * config.clock_ghz / total_cycles / 1e3
        if total_cycles > 0
        else 0.0
    )
    peak = config.peak_macs_per_cycle * point.mxu
    utilization = (
        total_macs / (peak * total_cycles) if total_cycles > 0 else 0.0
    )
    cost = point_cost_mm2(point)
    return FrontierPoint(
        point=point,
        perf_tflops=tflops,
        cost_mm2=cost["cost_mm2"],
        utilization=utilization,
        cycles=total_cycles,
        macs=total_macs,
        cost_parts=cost,
    )


def pareto_frontier(points: Sequence[FrontierPoint]) -> List[FrontierPoint]:
    """The non-dominated subset, cost-ascending (ties by ``point_id``)."""
    ordered = sorted(points, key=lambda fp: (fp.cost_mm2, fp.point_id))
    frontier: List[FrontierPoint] = []
    best_perf = float("-inf")
    for candidate in ordered:
        if any(other.dominates(candidate) for other in ordered):
            continue
        # Cost-ascending scan: keep only strict performance improvements
        # (equal-perf higher-cost points are dominated and already gone).
        if candidate.perf_tflops > best_perf or not frontier:
            frontier.append(candidate)
            best_perf = max(best_perf, candidate.perf_tflops)
    return frontier


def _point_doc(fp: FrontierPoint, on_frontier: bool) -> Dict[str, Any]:
    return {
        "point_id": fp.point_id,
        "point": fp.point.to_doc(),
        "perf_tflops": fp.perf_tflops,
        "cost_mm2": fp.cost_mm2,
        "utilization": fp.utilization,
        "cycles": fp.cycles,
        "macs": fp.macs,
        "cost_parts": dict(fp.cost_parts),
        "on_frontier": on_frontier,
    }


class FrontierJournal:
    """Append-only Pareto updates, one fsync'd record per round."""

    def __init__(self, path) -> None:
        self.path = pathlib.Path(path)

    def append_round(
        self, round_index: int, frontier: Sequence[FrontierPoint]
    ) -> None:
        record = {
            "schema": FRONTIER_SCHEMA,
            "round": round_index,
            "frontier": [fp.point_id for fp in frontier],
            "size": len(frontier),
        }
        crash_safe_append(
            self.path, json.dumps(record, sort_keys=True), fsync=True
        )

    def load(self) -> List[Dict[str, Any]]:
        """Every well-formed round record, in journal order (torn tails and
        corrupt lines skipped with a warning — the journal is a progress
        ledger; the artifact is rebuilt from results, never from here)."""
        rounds: List[Dict[str, Any]] = []
        if not self.path.exists():
            return rounds
        for lineno, line in enumerate(
            self.path.read_text().splitlines(), start=1
        ):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                if record.get("schema") != FRONTIER_SCHEMA:
                    raise ValueError(
                        f"unknown schema {record.get('schema')!r}"
                    )
                record["round"], record["frontier"]
            except (ValueError, KeyError, TypeError) as err:
                obs_log.warning(
                    "dse.frontier.corrupt_record",
                    path=str(self.path), line=lineno, error=str(err),
                )
                continue
            rounds.append(record)
        return rounds


def render_artifact(
    space: DesignSpace,
    workloads: Sequence[str],
    quick: bool,
    rounds: int,
    evaluated: Sequence[FrontierPoint],
    frontier: Sequence[FrontierPoint],
    quarantined: Sequence[str],
) -> bytes:
    """The canonical frontier artifact — a pure function of the sweep's
    *inputs and results*, never of its execution history (no timestamps,
    worker ids, attempt counts or host identity), so fault-free serial and
    chaotic sharded runs render identical bytes."""
    frontier_ids = {fp.point_id for fp in frontier}
    doc = {
        "schema": FRONTIER_SCHEMA,
        "kind": "repro-dse-frontier",
        "space": space.to_doc(),
        "workloads": sorted(workloads),
        "quick": bool(quick),
        "rounds": rounds,
        "points": [
            _point_doc(fp, fp.point_id in frontier_ids)
            for fp in sorted(evaluated, key=lambda fp: fp.point_id)
        ],
        "frontier": [fp.point_id for fp in frontier],
        "quarantined": sorted(quarantined),
    }
    return (json.dumps(doc, sort_keys=True, indent=1) + "\n").encode("utf-8")


def write_artifact(path, data: bytes) -> pathlib.Path:
    return atomic_write_bytes(path, data)
