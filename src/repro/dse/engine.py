"""The sweep coordinator: rounds, workers, quarantine, and the frontier.

One coordinator process owns the **plan** (which design points each
refinement round prices) and the **verdicts** (which tasks are poison);
workers own nothing but leases.  The coordinator's whole state is derived
from the on-disk queue on every loop iteration, which is what makes
``kill -9`` of *any* process — coordinator included — recoverable:
``--resume`` replays the deterministic planning function over the results
already journaled and falls through every round whose tasks are complete.

Round structure (all deterministic, see :mod:`repro.dse.space`):

1. round 0 prices the corner grid (:meth:`DesignSpace.seed_points`);
2. each later round prices :meth:`DesignSpace.refine` of the current
   Pareto frontier — index midpoints of cost-adjacent frontier pairs plus
   ±1 axis neighbours;
3. a round completes when every one of its tasks has a result **or** is
   quarantined; then the frontier is recomputed over all *complete*
   points and journaled.

Poison verdicts are coordinator-only: a task whose recorded failures plus
lease-generation bumps (ownership transfers — each one is a worker that
died holding the task) reach ``max_task_failures`` is parked in the
replayable quarantine journal; its design point is excluded from the
frontier and listed in the artifact.

Worker supervision mirrors the PR-4 supervisor's policy at queue
granularity: heartbeat-checked respawn with fresh owner identities (so a
zombie's leases fence correctly), capped; past the cap the coordinator
degrades to draining the queue serially in-process (with process-killing
chaos disabled, as the supervisor does).
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..obs import log as obs_log
from ..obs.flight import configure_recorder, get_beacon, maybe_dump
from ..resilience.atomic import atomic_write_text
from ..resilience.quarantine import QuarantineFile, QuarantineRecord
from .chaos import ChaosPlan
from .evaluate import parse_workload, workload_layers
from .frontier import (
    FrontierJournal,
    FrontierPoint,
    aggregate_point,
    pareto_frontier,
    render_artifact,
    write_artifact,
)
from .queue import Task, WorkQueue
from .space import PRESETS, DesignPoint, DesignSpace
from .worker import worker_entry

__all__ = ["SWEEP_SCHEMA", "SweepConfig", "run_sweep", "sweep_status", "replay_quarantine"]

SWEEP_SCHEMA = 1

#: Coordinator poll interval while waiting on a round.
_POLL_S = 0.1
#: Respawns allowed per worker slot before degrading to serial.
_RESPAWNS_PER_SLOT = 4


@dataclasses.dataclass(frozen=True)
class SweepConfig:
    """Everything one ``repro dse sweep`` invocation needs."""

    out: str
    preset: str = "quick"
    workloads: Tuple[str, ...] = ("ResNet@8", "AlexNet@8")
    quick: bool = False
    jobs: int = 1
    rounds: int = 3
    lease_ttl_s: float = 30.0
    max_task_failures: int = 3
    inject_faults: Optional[str] = None
    store: Optional[str] = None
    status_file: Optional[str] = None
    resume: bool = False

    def space(self) -> DesignSpace:
        try:
            return PRESETS[self.preset]
        except KeyError:
            raise ConfigError(
                f"unknown design-space preset {self.preset!r} "
                f"(expected one of {', '.join(sorted(PRESETS))})",
                field="preset", value=self.preset,
            ) from None

    def validate(self) -> None:
        self.space()
        if self.rounds < 1:
            raise ConfigError(
                "rounds must be >= 1", field="rounds", value=self.rounds
            )
        if self.jobs < 1:
            raise ConfigError(
                "jobs must be >= 1", field="jobs", value=self.jobs
            )
        if self.lease_ttl_s <= 0:
            raise ConfigError(
                "lease TTL must be positive",
                field="lease_ttl_s", value=self.lease_ttl_s,
            )
        if self.max_task_failures < 2:
            # A single crash (one lease transfer) must never quarantine a
            # task, or chaos campaigns would change the frontier.
            raise ConfigError(
                "max task failures must be >= 2",
                field="max_task_failures", value=self.max_task_failures,
            )
        for token in self.workloads:
            workload_layers(token)  # validates name and batch eagerly
        if self.inject_faults:
            ChaosPlan.parse(self.inject_faults)

    # The sweep's *identity* — the fields that define which results and
    # frontier it produces.  ``--resume`` must match these exactly.
    def identity_doc(self) -> Dict[str, Any]:
        return {
            "schema": SWEEP_SCHEMA,
            "preset": self.preset,
            "space": self.space().to_doc(),
            "workloads": sorted(self.workloads),
            "quick": bool(self.quick),
            "rounds": self.rounds,
        }


def _task_id(point: DesignPoint, workload: str) -> str:
    return f"{point.point_id}/{workload}"


def _point_tasks(
    point: DesignPoint, workloads: Sequence[str], quick: bool
) -> List[Task]:
    return [
        Task(
            task_id=_task_id(point, workload),
            payload={
                "point": point.to_doc(),
                "workload": workload,
                "quick": bool(quick),
            },
        )
        for workload in sorted(workloads)
    ]


class _WorkerPool:
    """Spawn/monitor/respawn the worker subprocesses (``--jobs`` > 1)."""

    def __init__(
        self,
        root: pathlib.Path,
        jobs: int,
        lease_ttl_s: float,
        chaos: Optional[ChaosPlan],
        store_dir: Optional[str],
        max_failures: int,
    ) -> None:
        import multiprocessing

        self._mp = multiprocessing.get_context()
        self.root = root
        self.jobs = jobs
        self.lease_ttl_s = lease_ttl_s
        self.chaos_doc = chaos.to_doc() if chaos else None
        self.store_dir = store_dir
        self.max_failures = max_failures
        self.procs: List[Tuple[Any, str]] = []  # (process, worker_id)
        self.incarnation = 0
        self.respawns = 0
        self.degraded = False

    def _spawn_one(self, slot: int) -> None:
        self.incarnation += 1
        worker_id = f"w{slot}.{self.incarnation}"
        proc = self._mp.Process(
            target=worker_entry,
            args=(
                str(self.root), worker_id, self.lease_ttl_s,
                self.chaos_doc, self.store_dir, self.max_failures,
            ),
            daemon=True,
        )
        proc.start()
        if slot < len(self.procs):
            self.procs[slot] = (proc, worker_id)
        else:
            self.procs.append((proc, worker_id))

    def start(self) -> None:
        for slot in range(self.jobs):
            self._spawn_one(slot)

    def alive(self) -> int:
        return sum(1 for proc, _ in self.procs if proc.is_alive())

    def reap_and_respawn(self) -> None:
        """Respawn dead slots with fresh identities; degrade past the cap."""
        if self.degraded:
            return
        for slot, (proc, worker_id) in enumerate(self.procs):
            if proc.is_alive():
                continue
            proc.join(timeout=0)
            if self.respawns >= self.jobs * _RESPAWNS_PER_SLOT:
                self.degraded = True
                obs_log.error(
                    "dse.pool.degraded",
                    respawns=self.respawns, jobs=self.jobs,
                )
                maybe_dump(
                    "dse-pool-degraded",
                    {"respawns": self.respawns, "jobs": self.jobs},
                )
                return
            self.respawns += 1
            obs_log.warning(
                "dse.pool.respawn",
                slot=slot, died=worker_id, exitcode=proc.exitcode,
                respawns=self.respawns,
            )
            self._spawn_one(slot)

    def stop(self, queue: WorkQueue, join_timeout_s: float = 5.0) -> None:
        queue.request_stop()
        for proc, _ in self.procs:
            proc.join(timeout=join_timeout_s)
        for proc, worker_id in self.procs:
            if proc.is_alive():  # wedged (e.g. chaos hang) — force it down
                obs_log.warning("dse.pool.terminate", worker=worker_id)
                proc.terminate()
                proc.join(timeout=2.0)


def _init_sweep_dir(cfg: SweepConfig, root: pathlib.Path) -> None:
    sweep_path = root / "sweep.json"
    identity = cfg.identity_doc()
    if sweep_path.exists():
        try:
            existing = json.loads(sweep_path.read_text())
        except (OSError, ValueError) as err:
            raise ConfigError(
                f"unreadable sweep.json in {root} ({err}); move it aside "
                "or start a fresh --out directory",
                field="out", value=str(root),
            ) from None
        if not cfg.resume:
            raise ConfigError(
                f"{root} already holds a sweep; pass --resume to continue "
                "it or choose a fresh --out directory",
                field="out", value=str(root),
            )
        if existing != identity:
            raise ConfigError(
                "--resume sweep identity mismatch: the directory was "
                "created with different space/workloads/rounds settings",
                field="out", value=str(root),
            )
    else:
        atomic_write_text(
            sweep_path, json.dumps(identity, sort_keys=True, indent=1) + "\n"
        )


def _aggregate_complete(
    seen: Dict[str, DesignPoint],
    workloads: Sequence[str],
    results: Dict[str, Dict[str, Any]],
    parked: Sequence[str],
) -> Tuple[List[FrontierPoint], List[str]]:
    """Frontier entries for every fully-evaluated point, plus the point ids
    excluded because one of their tasks was quarantined."""
    parked_set = set(parked)
    complete: List[FrontierPoint] = []
    excluded: List[str] = []
    for point_id in sorted(seen):
        point = seen[point_id]
        task_ids = [_task_id(point, w) for w in sorted(workloads)]
        if any(tid in parked_set for tid in task_ids):
            excluded.append(point_id)
            continue
        if all(tid in results for tid in task_ids):
            complete.append(
                aggregate_point(point, [results[tid] for tid in task_ids])
            )
    return complete, excluded


def run_sweep(cfg: SweepConfig) -> Dict[str, Any]:
    """Drive the whole sweep; returns the summary the CLI prints."""
    cfg.validate()
    space = cfg.space()
    root = pathlib.Path(cfg.out)
    queue = WorkQueue(root)
    queue.ensure_dirs()
    _init_sweep_dir(cfg, root)
    queue.clear_stop()
    configure_recorder(run_dir=str(root), install_signal=False)
    beacon = get_beacon()
    quarantine = QuarantineFile(root / "quarantine.jsonl")
    journal = FrontierJournal(root / "frontier.jsonl")
    journaled_rounds = {rec["round"] for rec in journal.load()}

    chaos: Optional[ChaosPlan] = None
    if cfg.inject_faults:
        chaos = dataclasses.replace(
            ChaosPlan.parse(cfg.inject_faults),
            hang_s=max(cfg.lease_ttl_s * 2.5, 1.0),
            coordinator_pid=os.getpid(),
        )

    if cfg.store:
        from ..store import attach

        attach(cfg.store)

    pool: Optional[_WorkerPool] = None
    if cfg.jobs > 1:
        pool = _WorkerPool(
            root, cfg.jobs, cfg.lease_ttl_s, chaos, cfg.store,
            cfg.max_task_failures,
        )
        pool.start()

    seen: Dict[str, DesignPoint] = {}
    frontier: List[FrontierPoint] = []
    started = time.time()
    done_at_start = len(queue.load_results())
    try:
        for round_index in range(cfg.rounds):
            if round_index == 0:
                candidates = space.seed_points()
            else:
                candidates = space.refine(
                    [fp.point for fp in frontier], seen.values()
                )
            if not candidates and round_index > 0:
                # Refinement converged — the round still journals (same
                # frontier again), keeping the round ledger dense.
                obs_log.info(
                    "dse.round.converged", round=round_index,
                    points=len(seen),
                )
            for point in candidates:
                seen[point.point_id] = point
            _enqueue_round(queue, candidates, cfg)
            expected = [
                _task_id(p, w)
                for p in seen.values()
                for w in sorted(cfg.workloads)
            ]
            _wait_for_round(
                cfg, queue, quarantine, chaos, expected, pool, beacon,
                round_index, started, done_at_start,
            )
            results = queue.load_results()
            parked = sorted(quarantine.load())
            complete, _excluded = _aggregate_complete(
                seen, cfg.workloads, results, parked
            )
            frontier = pareto_frontier(complete)
            if round_index not in journaled_rounds:
                journal.append_round(round_index, frontier)
                journaled_rounds.add(round_index)
            obs_log.info(
                "dse.round.done",
                round=round_index, points=len(seen),
                frontier=len(frontier), quarantined=len(parked),
            )
    finally:
        if pool is not None:
            pool.stop(queue)

    results = queue.load_results()
    parked = sorted(quarantine.load())
    complete, excluded = _aggregate_complete(
        seen, cfg.workloads, results, parked
    )
    frontier = pareto_frontier(complete)
    artifact = render_artifact(
        space, cfg.workloads, cfg.quick, cfg.rounds,
        complete, frontier, parked,
    )
    artifact_path = write_artifact(root / "frontier.json", artifact)
    _write_metrics(cfg, root, queue, quarantine, len(seen), len(frontier))
    beacon.update(
        phase="done",
        dse_round=cfg.rounds,
        dse_points=len(seen),
        dse_frontier=len(frontier),
        dse_quarantined=len(parked),
    )
    beacon.maybe_write(min_interval=0.0)
    return {
        "out": str(root),
        "artifact": str(artifact_path),
        "points_evaluated": len(complete),
        "points_seen": len(seen),
        "points_excluded": excluded,
        "frontier": [fp.point_id for fp in frontier],
        "quarantined": parked,
        "rounds": cfg.rounds,
        "degraded": bool(pool and pool.degraded),
    }


def _enqueue_round(
    queue: WorkQueue, candidates: Sequence[DesignPoint], cfg: SweepConfig
) -> None:
    known = queue.load_tasks()
    for point in candidates:
        for task in _point_tasks(point, cfg.workloads, cfg.quick):
            if task.task_id not in known:
                queue.add_task(task)


def _wait_for_round(
    cfg: SweepConfig,
    queue: WorkQueue,
    quarantine: QuarantineFile,
    chaos: Optional[ChaosPlan],
    expected: Sequence[str],
    pool: Optional[_WorkerPool],
    beacon,
    round_index: int,
    started: float,
    done_at_start: int,
) -> None:
    """Block until every expected task has a result or is quarantined.

    While waiting the coordinator is the health plane: it respawns dead
    workers, parks poison tasks, and publishes progress/ETA to the beacon.
    In serial mode (or after pool degradation) it also drains the queue
    itself, one pass per loop iteration.
    """
    serial = pool is None
    while True:
        if serial or (pool is not None and pool.degraded):
            # Drain one pass in-process; process-killing chaos is fenced
            # off by coordinator_pid inside ChaosPlan.apply.
            _serial_pass(cfg, queue, chaos)
        results = queue.load_results()
        parked = quarantine.load()
        pending = [
            tid for tid in expected
            if tid not in results and tid not in parked
        ]
        _publish_progress(
            beacon, round_index, expected, results, parked, pool,
            started, done_at_start,
        )
        if not pending:
            return
        _park_poison(cfg, queue, quarantine, pending)
        if pool is not None:
            pool.reap_and_respawn()
        if not serial and not (pool is not None and pool.degraded):
            time.sleep(_POLL_S)


def _serial_pass(
    cfg: SweepConfig, queue: WorkQueue, chaos: Optional[ChaosPlan]
) -> None:
    """One claim-evaluate-journal pass over currently pending tasks,
    in-process (serial mode and post-degradation fallback)."""
    from ..errors import classify_error
    from .worker import _evaluate, _quarantined_ids

    tasks = queue.load_tasks()
    results = queue.load_results()
    parked = _quarantined_ids(queue.root)
    owner = "coordinator"
    failures = queue.load_failures()
    for task_id in sorted(tasks):
        if task_id in results or task_id in parked:
            continue
        if len(failures.get(task_id, [])) >= cfg.max_task_failures:
            continue  # at the cap — the poison verdict decides its fate
        lease = queue.claim(task_id, owner, cfg.lease_ttl_s)
        if lease is None:
            continue
        attempt = len(queue.load_failures().get(task_id, [])) + 1
        try:
            if chaos is not None:
                chaos.apply(queue, task_id, attempt, lease.generation)
            queue.complete(task_id, _evaluate(tasks[task_id].payload))
        except Exception as err:
            kind = classify_error(err).__name__
            queue.record_failure(
                task_id, owner, attempt, kind=kind, error=str(err)
            )
            obs_log.warning(
                "dse.task.failed",
                task=task_id, attempt=attempt, kind=kind, error=str(err),
            )
        finally:
            queue.release(task_id, owner)


def _park_poison(
    cfg: SweepConfig,
    queue: WorkQueue,
    quarantine: QuarantineFile,
    pending: Sequence[str],
) -> None:
    """The coordinator-only poison verdict (see module docstring)."""
    failures = queue.load_failures()
    tasks = None
    for task_id in pending:
        fails = failures.get(task_id, [])
        lease = queue.lease_of(task_id)
        transfers = max(0, (lease.generation - 1) if lease else 0)
        effective = len(fails) + transfers
        if effective < cfg.max_task_failures:
            continue
        if lease is not None and not lease.expired():
            continue  # actively being worked — give the attempt a chance
        if tasks is None:
            tasks = queue.load_tasks()
        task = tasks.get(task_id)
        quarantine.park(
            QuarantineRecord(
                task_id=task_id,
                payload=dict(task.payload) if task else {},
                reason=(
                    f"failed {len(fails)} attempt(s), "
                    f"{transfers} lease transfer(s)"
                ),
                failures=[
                    {
                        "attempt": f.get("attempt"),
                        "kind": f.get("kind"),
                        "error": f.get("error"),
                    }
                    for f in fails
                ],
            )
        )
        maybe_dump(
            "dse-quarantine",
            {"task": task_id, "failures": len(fails), "transfers": transfers},
        )


def _publish_progress(
    beacon,
    round_index: int,
    expected: Sequence[str],
    results: Dict[str, Any],
    parked: Dict[str, Any],
    pool: Optional[_WorkerPool],
    started: float,
    done_at_start: int,
) -> None:
    done = sum(1 for tid in expected if tid in results)
    total = len(expected)
    elapsed = max(time.time() - started, 1e-9)
    rate = max(len(results) - done_at_start, 0) / elapsed
    remaining = total - done - sum(1 for t in expected if t in parked)
    eta_s = remaining / rate if rate > 0 else None
    fields = {
        "phase": f"round {round_index}",
        "dse_round": round_index,
        "dse_tasks_total": total,
        "dse_tasks_done": done,
        "dse_quarantined": len(parked),
        "dse_rate_per_s": round(rate, 3),
    }
    if eta_s is not None:
        fields["dse_eta_s"] = round(eta_s, 1)
    if pool is not None:
        fields["dse_workers_alive"] = pool.alive()
        fields["dse_respawns"] = pool.respawns
        fields["dse_degraded"] = pool.degraded
    beacon.update(**fields)
    beacon.maybe_write()


def _write_metrics(
    cfg: SweepConfig,
    root: pathlib.Path,
    queue: WorkQueue,
    quarantine: QuarantineFile,
    points_seen: int,
    frontier_size: int,
) -> None:
    from ..obs.prom import write_prometheus
    from ..trace.metrics import MetricsRegistry

    registry = MetricsRegistry()
    failures = queue.load_failures()
    registry.inc_counter("repro_dse_tasks_total", len(queue.load_tasks()))
    registry.inc_counter("repro_dse_results_total", len(queue.load_results()))
    registry.inc_counter(
        "repro_dse_failures_total",
        sum(len(f) for f in failures.values()),
    )
    registry.inc_counter(
        "repro_dse_quarantined_total", len(quarantine.load())
    )
    registry.set_gauge("repro_dse_points_seen", points_seen)
    registry.set_gauge("repro_dse_frontier_size", frontier_size)
    registry.set_gauge("repro_dse_rounds", cfg.rounds)
    write_prometheus(
        root / "metrics.prom", registry, labels={"run_id": root.name}
    )


def sweep_status(out: str) -> Dict[str, Any]:
    """The ``repro dse status`` snapshot, read purely from disk."""
    root = pathlib.Path(out)
    queue = WorkQueue(root)
    tasks = queue.load_tasks()
    results = queue.load_results()
    failures = queue.load_failures()
    parked = QuarantineFile(root / "quarantine.jsonl").load()
    journal = FrontierJournal(root / "frontier.jsonl").load()
    heartbeats = queue.load_heartbeats()
    now = time.time()
    workers = {
        wid: {
            "state": beat.get("state"),
            "task": beat.get("task"),
            "done": beat.get("done"),
            "age_s": round(now - float(beat.get("time", now)), 1),
        }
        for wid, beat in heartbeats.items()
    }
    return {
        "out": str(root),
        "tasks": len(tasks),
        "results": len(results),
        "pending": len(
            [t for t in tasks if t not in results and t not in parked]
        ),
        "failures": sum(len(f) for f in failures.values()),
        "quarantined": sorted(parked),
        "rounds_journaled": [rec["round"] for rec in journal],
        "last_frontier": journal[-1]["frontier"] if journal else [],
        "workers": workers,
        "artifact": (
            str(root / "frontier.json")
            if (root / "frontier.json").exists()
            else None
        ),
    }


def replay_quarantine(out: str) -> List[Dict[str, Any]]:
    """Re-run every quarantined task serially in this process and report.

    A task that now passes had environmental failures (its result is
    journaled so the next ``--resume`` folds the point back in); one that
    still fails is true poison — a model bug or a genuinely hostile
    configuration worth keeping parked.
    """
    from .worker import _evaluate

    root = pathlib.Path(out)
    queue = WorkQueue(root)
    parked = QuarantineFile(root / "quarantine.jsonl").load()
    report: List[Dict[str, Any]] = []
    for task_id in sorted(parked):
        record = parked[task_id]
        try:
            payload = _evaluate(record.payload)
        except Exception as err:
            report.append(
                {
                    "task_id": task_id,
                    "status": "still-failing",
                    "error": str(err),
                    "reason": record.reason,
                }
            )
            continue
        queue.complete(task_id, payload)
        report.append(
            {"task_id": task_id, "status": "pass", "reason": record.reason}
        )
    return report
