"""Resilient distributed design-space exploration (DESIGN.md §4k).

The flagship scale workload: sweep **array geometry × SRAM capacity/word
width × HBM bandwidth × dual-MXU policy** (the axes Fig 16 opens and the
TPU-v3 remarks extend) across the workload zoo, refining adaptively toward
the performance/area Pareto frontier instead of pricing a dense grid.

Robustness is the architecture, not a feature:

- a **sharded on-disk work queue** (:mod:`repro.dse.queue`) with
  lease-based task ownership — fsync'd lease records with expiry and
  generation fencing (:mod:`repro.resilience.lease`), so a kill -9'd or
  hung worker's tasks are reclaimed by survivors;
- **poison-task quarantine** — a config that crashes or AuditFaults its
  failure cap is parked in a replayable quarantine journal
  (:mod:`repro.resilience.quarantine`) instead of burning the error
  budget or voiding the sweep;
- a **crash-safe frontier journal** — append-only Pareto updates per
  refinement round plus an atomically-written final artifact whose bytes
  are a pure function of the design space, so ``--resume`` after any
  crash reconstructs it byte-identically (the chaos e2e compares a
  ``--jobs 4`` crash/hang/flaky/corrupt-store run against a fault-free
  serial run);
- the **persistent result store** (:mod:`repro.store`) as the simulation
  tier underneath, and per-worker heartbeats surfaced through the
  :class:`~repro.obs.flight.beacon.Beacon` / ``repro top`` console.

Entry point: ``python -m repro dse sweep|status|replay`` (see
:mod:`repro.dse.cli`), superseding the fixed-grid
``design_space_plus`` experiment for at-scale exploration.
"""

from __future__ import annotations

from .space import DesignPoint, DesignSpace, PRESETS
from .frontier import FrontierPoint, pareto_frontier

__all__ = [
    "DesignPoint",
    "DesignSpace",
    "PRESETS",
    "FrontierPoint",
    "pareto_frontier",
]
