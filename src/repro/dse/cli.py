"""``python -m repro dse sweep|status|replay`` — the sweep engine's CLI.

- ``dse sweep --out DIR`` drives a full exploration: seeds the corner
  grid, refines toward the Pareto frontier for ``--rounds`` rounds,
  shards the work across ``--jobs`` lease-holding workers, and writes the
  canonical ``frontier.json`` artifact.  ``--resume`` continues a sweep
  whose coordinator died (same ``--out``, same settings) and reconstructs
  the artifact byte-identically.
- ``dse status --out DIR`` prints a point-in-time snapshot straight from
  the sweep directory — tasks done/pending, failures, quarantine, worker
  heartbeats, last journaled frontier.  Works on live and dead sweeps.
- ``dse replay --out DIR`` re-runs every quarantined task serially and
  reports which still fail (true poison) and which now pass (their
  results are journaled so a following ``--resume`` folds the point
  back in).

This supersedes the fixed-grid ``design_space_plus`` experiment for
at-scale exploration; that experiment remains for the paper-sized tables.
"""

from __future__ import annotations

import argparse
import json
from typing import List, Optional

from ..errors import ConfigError
from ..obs import log as obs_log

__all__ = ["add_dse_parser", "cmd_dse"]


def add_dse_parser(sub, obs_parent) -> None:
    """Register the ``dse`` subcommand tree on the root CLI."""
    p = sub.add_parser(
        "dse",
        parents=[obs_parent],
        help="resilient distributed design-space exploration "
        "(sweep | status | replay)",
    )
    dse_sub = p.add_subparsers(dest="dse_command", required=True)

    sp = dse_sub.add_parser(
        "sweep", parents=[obs_parent],
        help="run (or --resume) an adaptive Pareto sweep",
    )
    sp.add_argument("--out", required=True, metavar="DIR",
                    help="sweep directory (queue, journals, artifact)")
    sp.add_argument("--preset", default="quick",
                    choices=("paper", "quick", "smoke"),
                    help="design-space preset (default quick)")
    sp.add_argument("--workloads", default="ResNet@8,AlexNet@8",
                    metavar="LIST",
                    help="comma list of network[@batch] tokens "
                    "(default ResNet@8,AlexNet@8)")
    sp.add_argument("--quick", action="store_true",
                    help="first 4 conv layers per network only")
    sp.add_argument("--jobs", type=int, default=1,
                    help="worker processes (1 = serial in-process)")
    sp.add_argument("--rounds", type=int, default=3,
                    help="refinement rounds after the corner grid "
                    "(default 3)")
    sp.add_argument("--lease-s", type=float, default=30.0, metavar="S",
                    help="task lease TTL; a worker silent past this is "
                    "presumed dead and its task is reclaimed (default 30)")
    sp.add_argument("--max-task-failures", type=int, default=3, metavar="N",
                    help="failures+lease transfers before a task is "
                    "quarantined as poison (default 3, minimum 2)")
    sp.add_argument("--inject-faults", default=None, metavar="SPEC",
                    help="chaos campaign, e.g. "
                    "'crash,hang,flaky,corrupt-store,rate=0.4,seed=7' "
                    "or 'poison=a64-s16'")
    sp.add_argument("--store", default=None, metavar="DIR",
                    help="persistent result store backing the simulators "
                    "(must agree with REPRO_STORE_DIR when both are set)")
    sp.add_argument("--status-file", default=None, metavar="PATH",
                    help="status beacon JSON for `repro top --status-file`")
    sp.add_argument("--resume", action="store_true",
                    help="continue an interrupted sweep in --out")
    sp.set_defaults(func=cmd_dse)

    sp = dse_sub.add_parser(
        "status", parents=[obs_parent],
        help="snapshot a sweep directory (live or dead)",
    )
    sp.add_argument("--out", required=True, metavar="DIR")
    sp.add_argument("--json", action="store_true", dest="as_json",
                    help="machine-readable output")
    sp.set_defaults(func=cmd_dse)

    sp = dse_sub.add_parser(
        "replay", parents=[obs_parent],
        help="re-run quarantined tasks serially and report",
    )
    sp.add_argument("--out", required=True, metavar="DIR")
    sp.set_defaults(func=cmd_dse)


def cmd_dse(args) -> int:
    if args.dse_command == "sweep":
        return _cmd_sweep(args)
    if args.dse_command == "status":
        return _cmd_status(args)
    if args.dse_command == "replay":
        return _cmd_replay(args)
    raise AssertionError(f"unhandled dse command {args.dse_command!r}")


def _cmd_sweep(args) -> int:
    from ..store import resolve_store_dir
    from .engine import SweepConfig, run_sweep

    try:
        workloads = tuple(
            token.strip()
            for token in args.workloads.split(",") if token.strip()
        )
        if not workloads:
            raise ConfigError(
                "no workloads given", field="workloads", value=args.workloads
            )
        cfg = SweepConfig(
            out=args.out,
            preset=args.preset,
            workloads=workloads,
            quick=args.quick,
            jobs=args.jobs,
            rounds=args.rounds,
            lease_ttl_s=args.lease_s,
            max_task_failures=args.max_task_failures,
            inject_faults=args.inject_faults,
            store=resolve_store_dir(args.store),
            status_file=args.status_file,
            resume=args.resume,
        )
        summary = run_sweep(cfg)
    except ConfigError as err:
        obs_log.error("dse.config_error", error=str(err))
        obs_log.console(f"dse sweep: {err}")
        return 2
    obs_log.console(
        f"dse sweep: {summary['points_evaluated']} point(s) evaluated over "
        f"{summary['rounds']} round(s); frontier has "
        f"{len(summary['frontier'])} point(s); "
        f"{len(summary['quarantined'])} task(s) quarantined"
    )
    for point_id in summary["frontier"]:
        obs_log.console(f"  frontier: {point_id}")
    for task_id in summary["quarantined"]:
        obs_log.console(f"  quarantined: {task_id}  (dse replay --out "
                        f"{summary['out']} to re-test)")
    if summary["degraded"]:
        obs_log.console(
            "dse sweep: worker pool degraded to serial after repeated "
            "crashes — results are complete but slower than requested"
        )
    obs_log.console(f"artifact: {summary['artifact']}")
    return 0


def _cmd_status(args) -> int:
    from .engine import sweep_status

    status = sweep_status(args.out)
    if getattr(args, "as_json", False):
        obs_log.console(json.dumps(status, sort_keys=True, indent=1))
        return 0
    obs_log.console(
        f"sweep at {status['out']}: {status['results']}/{status['tasks']} "
        f"task(s) done, {status['pending']} pending, "
        f"{status['failures']} failure record(s), "
        f"{len(status['quarantined'])} quarantined"
    )
    for wid in sorted(status["workers"]):
        worker = status["workers"][wid]
        task = worker.get("task") or "-"
        obs_log.console(
            f"  worker {wid}: {worker.get('state')} (task {task}, "
            f"done {worker.get('done')}, heartbeat {worker.get('age_s')}s ago)"
        )
    rounds = status["rounds_journaled"]
    if rounds:
        obs_log.console(
            f"  rounds journaled: {rounds}; last frontier: "
            f"{', '.join(status['last_frontier']) or '(empty)'}"
        )
    for task_id in status["quarantined"]:
        obs_log.console(f"  quarantined: {task_id}")
    if status["artifact"]:
        obs_log.console(f"  artifact: {status['artifact']}")
    return 0


def _cmd_replay(args) -> int:
    from .engine import replay_quarantine

    report = replay_quarantine(args.out)
    if not report:
        obs_log.console("dse replay: quarantine is empty")
        return 0
    still_failing = 0
    for entry in report:
        if entry["status"] == "pass":
            obs_log.console(
                f"  PASS {entry['task_id']} (was: {entry['reason']}) — "
                "result journaled; --resume will fold the point back in"
            )
        else:
            still_failing += 1
            obs_log.console(
                f"  STILL-FAILING {entry['task_id']}: {entry['error']}"
            )
    obs_log.console(
        f"dse replay: {len(report) - still_failing}/{len(report)} "
        "quarantined task(s) now pass"
    )
    return 1 if still_failing else 0
