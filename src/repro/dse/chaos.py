"""Deterministic chaos for the sweep engine: ``--inject-faults``.

The campaign spec is a comma list of fault kinds plus options::

    --inject-faults crash,hang,flaky,corrupt-store,rate=0.4,seed=7
    --inject-faults poison=a64-s16           # deterministic poison tasks

Which task is faulted, and how, is a pure function of ``(seed, task_id)``
— a SHA-256 coin flip, no RNG state — so a chaos campaign is exactly
reproducible.  Each transient kind fires **exactly once per task**, keyed
on persistent queue state rather than in-memory attempt counters (which a
crash would reset):

- ``crash``         — ``os._exit(137)`` after claiming the lease, only
  while the lease is at generation 1: the reclaiming survivor (generation
  2) sails through.  Simulates kill -9 / OOM.
- ``hang``          — sleep past the lease TTL while holding it (only at
  generation 1), so a survivor steals the task and the sleeper wakes to
  find itself fenced — its late completion lands as an idempotent
  duplicate.  Simulates a wedged worker.
- ``flaky``         — raise :class:`~repro.errors.TransientFault` on the
  first recorded attempt; the retry succeeds.
- ``corrupt-store`` — append a torn garbage line to the task's result
  shard (what a power cut mid-append leaves) then fail the attempt; the
  retry appends the clean record and the loader skips the torn line.
- ``poison=<substr>`` — tasks whose id contains the substring raise
  :class:`~repro.errors.PermanentFault` on *every* attempt: the
  deterministic poison pill that must end up quarantined.

Because every fault either self-heals on the next attempt/lease
generation or deterministically quarantines the same tasks, a chaos run
converges to the same result set as a fault-free run — which is exactly
what the byte-identical frontier e2e asserts.

Process-killing kinds (``crash``, ``hang``) are disabled in the
coordinator process itself (same guard as the supervisor's fault plan):
chaos aims at workers; the coordinator's own death is covered by
``--resume``, which the e2e exercises with a real ``kill -9``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import time
from typing import Any, Dict, Optional, Tuple

from ..errors import ConfigError, PermanentFault, TransientFault
from ..obs import log as obs_log
from ..resilience.atomic import crash_safe_append

__all__ = ["KINDS", "ChaosPlan"]

KINDS = ("crash", "hang", "flaky", "corrupt-store")

#: Default fraction of tasks that draw a fault.
DEFAULT_RATE = 0.35


def _digest_floats(seed: int, task_id: str) -> Tuple[float, int]:
    """``(uniform draw in [0,1), kind selector)`` for one task — stable."""
    digest = hashlib.sha256(f"{seed}:{task_id}".encode("utf-8")).digest()
    draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
    selector = int.from_bytes(digest[8:12], "big")
    return draw, selector


@dataclasses.dataclass(frozen=True)
class ChaosPlan:
    """A parsed ``--inject-faults`` campaign (see module docstring)."""

    kinds: Tuple[str, ...] = ()
    rate: float = DEFAULT_RATE
    seed: int = 0
    poison: Optional[str] = None
    hang_s: float = 5.0
    coordinator_pid: int = -1

    @classmethod
    def parse(cls, spec: str) -> "ChaosPlan":
        kinds = []
        rate = DEFAULT_RATE
        seed = 0
        poison = None
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            key, sep, value = token.partition("=")
            if not sep:
                if token not in KINDS:
                    raise ConfigError(
                        f"unknown fault kind {token!r} "
                        f"(expected one of {', '.join(KINDS)})",
                        field="inject_faults", value=spec,
                    )
                if token not in kinds:
                    kinds.append(token)
            elif key == "rate":
                try:
                    rate = float(value)
                except ValueError:
                    raise ConfigError(
                        "rate must be a float", field="inject_faults",
                        value=spec,
                    ) from None
                if not 0.0 <= rate <= 1.0:
                    raise ConfigError(
                        "rate must be in [0, 1]", field="inject_faults",
                        value=spec,
                    )
            elif key == "seed":
                try:
                    seed = int(value)
                except ValueError:
                    raise ConfigError(
                        "seed must be an integer", field="inject_faults",
                        value=spec,
                    ) from None
            elif key == "poison":
                poison = value
            else:
                raise ConfigError(
                    f"unknown fault option {key!r}",
                    field="inject_faults", value=spec,
                )
        if not kinds and poison is None:
            raise ConfigError(
                "fault spec names no fault kinds",
                field="inject_faults", value=spec,
            )
        return cls(kinds=tuple(kinds), rate=rate, seed=seed, poison=poison)

    # --------------------------------------------------------- serialization
    def to_doc(self) -> Dict[str, Any]:
        return {
            "kinds": list(self.kinds),
            "rate": self.rate,
            "seed": self.seed,
            "poison": self.poison,
            "hang_s": self.hang_s,
            "coordinator_pid": self.coordinator_pid,
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "ChaosPlan":
        return cls(
            kinds=tuple(doc.get("kinds", ())),
            rate=float(doc.get("rate", DEFAULT_RATE)),
            seed=int(doc.get("seed", 0)),
            poison=doc.get("poison"),
            hang_s=float(doc.get("hang_s", 5.0)),
            coordinator_pid=int(doc.get("coordinator_pid", -1)),
        )

    # -------------------------------------------------------------- decision
    def fault_for(self, task_id: str) -> Optional[str]:
        """The fault kind this task draws, or None — pure and stable."""
        if not self.kinds:
            return None
        draw, selector = _digest_floats(self.seed, task_id)
        if draw >= self.rate:
            return None
        return self.kinds[selector % len(self.kinds)]

    def apply(self, queue, task_id: str, attempt: int, generation: int) -> None:
        """Fire this task's fault if its once-only condition holds.

        Called by the worker after claiming the lease, before evaluating.
        ``attempt`` counts *recorded* failures + 1; ``generation`` is the
        lease's ownership-transfer count.
        """
        if self.poison is not None and self.poison in task_id:
            raise PermanentFault(
                f"injected poison fault for task {task_id!r}"
            )
        kind = self.fault_for(task_id)
        if kind is None:
            return
        in_coordinator = os.getpid() == self.coordinator_pid
        if kind == "crash" and generation <= 1 and not in_coordinator:
            obs_log.warning("dse.chaos.crash", task=task_id)
            os._exit(137)
        if kind == "hang" and generation <= 1 and not in_coordinator:
            obs_log.warning("dse.chaos.hang", task=task_id, sleep_s=self.hang_s)
            time.sleep(self.hang_s)
            return  # wake up fenced; the late result is a benign duplicate
        if kind == "flaky" and attempt <= 1:
            raise TransientFault(f"injected flaky fault for task {task_id!r}")
        if kind == "corrupt-store" and attempt <= 1:
            # What a power cut mid-append leaves behind: a torn, non-JSON
            # tail line.  The loader must skip it and the retry must append
            # the clean record after it.
            crash_safe_append(
                queue.shard_path(task_id),
                '{"schema": 1, "task_id": "' + task_id + '", "resu',
                fsync=True,
            )
            raise TransientFault(
                f"injected corrupt-store fault for task {task_id!r}"
            )
