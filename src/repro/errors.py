"""Structured error taxonomy shared across the repo.

Two families live here because every layer needs them and they must not
drag any heavy imports along:

- **Configuration errors** — :class:`ConfigError` is what the frozen
  config dataclasses (:class:`~repro.memory.dram.HBMConfig`,
  :class:`~repro.memory.sram.SRAMConfig`,
  :class:`~repro.systolic.config.TPUConfig`,
  :class:`~repro.gpu.config.GPUConfig`, :class:`~repro.core.conv_spec.
  ConvSpec`) raise at construction when a value is nonsensical (zero
  channels, stride 0, non-positive clock).  It subclasses ``ValueError``
  so long-standing ``except ValueError`` call sites keep working, but it
  carries the offending ``field`` and ``value`` so a sweep driver can
  report *which* knob broke instead of failing deep inside a schedule.

- **Fault taxonomy** — the resilience layer (see
  :mod:`repro.resilience`) classifies every failure it supervises into
  :class:`TransientFault` (worth retrying: crashed/OOM'd/hung workers,
  injected flakiness), :class:`PermanentFault` (deterministic — retrying
  would only repeat it) or :class:`AuditFault` (the result *exists* but
  failed a bit-exactness/cycle-accounting audit — never retried, always
  surfaced loudly).  :func:`classify_error` maps arbitrary exceptions
  onto the taxonomy.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Type

__all__ = [
    "ReproError",
    "ConfigError",
    "FaultError",
    "TransientFault",
    "PermanentFault",
    "AuditFault",
    "classify_error",
]


class ReproError(Exception):
    """Base class of every structured error this repo raises."""


class ConfigError(ReproError, ValueError):
    """A configuration dataclass rejected a nonsensical value.

    ``field`` and ``value`` identify the offending knob when known; the
    message always stands alone.  Subclasses ``ValueError`` for
    backwards compatibility with existing ``except ValueError`` guards.
    """

    def __init__(
        self,
        message: str,
        *,
        field: Optional[str] = None,
        value: Any = None,
    ) -> None:
        self.field = field
        self.value = value
        if field is not None:
            message = f"{field}: {message} (got {value!r})"
        super().__init__(message)


class FaultError(ReproError):
    """Base class of the resilience layer's fault taxonomy."""

    #: Whether the supervisor may retry a task that raised this.
    retryable = False


class TransientFault(FaultError):
    """A failure that may vanish on retry (crash, OOM, hang, flaky I/O)."""

    retryable = True


class PermanentFault(FaultError):
    """A deterministic failure — retrying would only repeat it."""

    retryable = False


class AuditFault(PermanentFault):
    """A result was produced but failed an integrity/bit-exactness audit.

    Never retried: the inputs were fine, the *computation* disagreed with
    its own invariants, which is exactly what must stop a run.

    When raised by the :mod:`repro.audit` layer the fault carries a
    structured payload — the stable ``invariant`` id from the catalog,
    the ``expected`` and ``actual`` values, and a ``context`` dict with
    the ConvSpec/config fingerprints — so a supervisor or fuzz harness
    can triage violations without parsing the message.  Bare
    construction (``AuditFault("msg")``) keeps working for older call
    sites, and instances pickle across process boundaries with their
    payload intact (``BaseException`` ships ``__dict__`` as state).
    """

    def __init__(
        self,
        message: str,
        *,
        invariant: Optional[str] = None,
        expected: Any = None,
        actual: Any = None,
        context: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.invariant = invariant
        self.expected = expected
        self.actual = actual
        self.context = dict(context or {})
        if invariant is not None:
            message = (
                f"[{invariant}] {message} "
                f"(expected {expected!r}, actual {actual!r})"
            )
        super().__init__(message)

    def payload(self) -> Dict[str, Any]:
        """The structured violation record (JSON-friendly modulo values)."""
        return {
            "invariant": self.invariant,
            "expected": self.expected,
            "actual": self.actual,
            "context": dict(self.context),
            "message": str(self),
        }


def classify_error(err: BaseException) -> Type[FaultError]:
    """Map an arbitrary exception onto the fault taxonomy.

    Already-classified faults pass through.  Infrastructure failures that
    a respawned worker plausibly survives — a broken process pool, an
    OOM kill, a timeout, connection-level I/O errors — are transient;
    audit errors from the cycle-accounting layer are :class:`AuditFault`;
    everything else (assertion errors, bad math, ``ConfigError``...) is
    permanent.
    """
    if isinstance(err, FaultError):
        return type(err)
    # Imported lazily: trace is optional at classification time and this
    # module must stay dependency-free.
    try:
        from .trace.metrics import CycleAccountingError
    except Exception:  # pragma: no cover - trace always importable here
        CycleAccountingError = ()  # type: ignore[assignment]
    if CycleAccountingError and isinstance(err, CycleAccountingError):
        return AuditFault
    try:
        from concurrent.futures.process import BrokenProcessPool
    except Exception:  # pragma: no cover
        BrokenProcessPool = ()  # type: ignore[assignment]
    transient_types = (
        TimeoutError,
        MemoryError,
        ConnectionError,
        BrokenPipeError,
        EOFError,
    )
    if BrokenProcessPool and isinstance(err, BrokenProcessPool):
        return TransientFault
    if isinstance(err, transient_types):
        return TransientFault
    return PermanentFault
