"""Per-key circuit breakers: stop re-running work that keeps failing.

The serving plane's version of :mod:`repro.resilience.quarantine`.  The
offline planes can afford to *park* a poison config and move on — a sweep
has a work list and an end.  A daemon does not: the same hostile ConvSpec
can arrive a thousand times an hour, and re-simulating it each time burns
engine wall-clock that healthy queries needed (the paper's whole point is
that implicit-conv latency is violently shape-sensitive, so one spec can
cost orders of magnitude more than its neighbors).  A breaker converts
"deterministically fails/times out" into "fast, honest refusal":

- **closed** (healthy): requests flow; failures within ``window_s``
  accumulate; ``threshold`` consecutive-ish failures trip the breaker.
- **open**: requests are refused instantly with the recorded verdict (the
  serve layer turns that into HTTP 422 + ``Retry-After``) — no engine
  time is spent.  After ``cooldown_s`` the breaker **half-opens**.
- **half-open**: a limited number of probe requests are admitted; one
  success closes the breaker (full amnesty), one failure re-opens it with
  a fresh cooldown.

Keys are canonical-spec fingerprints, so renamed/transposed copies of a
hostile spec share one breaker — the same symmetry folding the memo cache
uses (:func:`repro.perf.cache.canonical_spec`).

Everything is deterministic given the injected ``clock`` (tests pass a
fake); the registry never grows without bound (``max_keys`` LRU evicts
the stalest *closed* breaker first).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Callable, Dict, List, Optional

from ..obs import log as obs_log

__all__ = [
    "BreakerPolicy",
    "BreakerOpen",
    "CircuitBreaker",
    "BreakerRegistry",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclasses.dataclass(frozen=True)
class BreakerPolicy:
    """Trip/cooldown knobs shared by every breaker in a registry."""

    #: Failures within ``window_s`` that trip a closed breaker.
    threshold: int = 3
    #: Seconds an open breaker refuses before half-opening.
    cooldown_s: float = 30.0
    #: Seconds a failure stays relevant to the trip count.
    window_s: float = 300.0
    #: Probe requests admitted while half-open (1 = classic breaker).
    half_open_probes: int = 1
    #: Failure records kept per breaker for the verdict payload.
    max_failures_kept: int = 8


class BreakerOpen(RuntimeError):
    """Refused by an open breaker; carries the verdict document."""

    def __init__(self, verdict: Dict[str, Any]) -> None:
        super().__init__(
            f"circuit breaker open for {verdict.get('fingerprint')} "
            f"({verdict.get('trip_reason')})"
        )
        self.verdict = verdict


class CircuitBreaker:
    """State machine for one fingerprint (see module docstring)."""

    def __init__(
        self,
        key: str,
        policy: BreakerPolicy,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.key = key
        self.policy = policy
        self.clock = clock
        self.state = CLOSED
        self.failures: List[Dict[str, Any]] = []  # within the window
        self.opened_at: Optional[float] = None
        self.probes_inflight = 0
        self.trips = 0
        self.last_touch = clock()

    # ------------------------------------------------------------- plumbing
    def _prune(self, now: float) -> None:
        cutoff = now - self.policy.window_s
        self.failures = [f for f in self.failures if f["ts"] >= cutoff]

    def cooldown_remaining(self, now: Optional[float] = None) -> float:
        if self.state != OPEN or self.opened_at is None:
            return 0.0
        now = self.clock() if now is None else now
        return max(0.0, self.policy.cooldown_s - (now - self.opened_at))

    def verdict(self, now: Optional[float] = None) -> Dict[str, Any]:
        """The refusal document: why the breaker is open, when to retry."""
        now = self.clock() if now is None else now
        recent = self.failures[-self.policy.max_failures_kept:]
        return {
            "fingerprint": self.key,
            "state": self.state,
            "trips": self.trips,
            "trip_reason": recent[-1]["fault"] if recent else "unknown",
            "failures": [
                {"fault": f["fault"], "message": f["message"]} for f in recent
            ],
            "retry_after_s": round(self.cooldown_remaining(now), 3),
        }

    # ------------------------------------------------------------ lifecycle
    def admit(self) -> None:
        """Gate one request; raises :class:`BreakerOpen` when refusing.

        An open breaker whose cooldown elapsed transitions to half-open
        and admits up to ``half_open_probes`` concurrent probes; further
        requests keep being refused until a probe reports back.
        """
        now = self.clock()
        self.last_touch = now
        if self.state == CLOSED:
            return
        if self.state == OPEN:
            if self.cooldown_remaining(now) > 0.0:
                raise BreakerOpen(self.verdict(now))
            self.state = HALF_OPEN
            self.probes_inflight = 0
            obs_log.info("breaker.half_open", fingerprint=self.key)
        # HALF_OPEN: ration the probes.
        if self.probes_inflight >= self.policy.half_open_probes:
            verdict = self.verdict(now)
            verdict["state"] = HALF_OPEN
            verdict["retry_after_s"] = round(self.policy.cooldown_s, 3)
            raise BreakerOpen(verdict)
        self.probes_inflight += 1

    def record_success(self) -> None:
        """A request for this key completed: close and forget everything."""
        if self.state != CLOSED:
            obs_log.info(
                "breaker.closed", fingerprint=self.key, was=self.state
            )
        self.state = CLOSED
        self.failures = []
        self.opened_at = None
        self.probes_inflight = 0
        self.last_touch = self.clock()

    def record_failure(self, fault: str, message: str) -> bool:
        """Count one failure; returns True when this call *trips* the breaker."""
        now = self.clock()
        self.last_touch = now
        self._prune(now)
        self.failures.append({"ts": now, "fault": fault, "message": message})
        if self.state == HALF_OPEN:
            # The probe failed: straight back to open, fresh cooldown.
            self.state = OPEN
            self.opened_at = now
            self.probes_inflight = 0
            self.trips += 1
            obs_log.warning(
                "breaker.reopened", fingerprint=self.key, fault=fault
            )
            return True
        if self.state == CLOSED and len(self.failures) >= self.policy.threshold:
            self.state = OPEN
            self.opened_at = now
            self.trips += 1
            obs_log.warning(
                "breaker.tripped",
                fingerprint=self.key, fault=fault,
                failures=len(self.failures),
            )
            return True
        return False


class BreakerRegistry:
    """All breakers of one service, keyed by canonical fingerprint."""

    def __init__(
        self,
        policy: Optional[BreakerPolicy] = None,
        clock: Callable[[], float] = time.monotonic,
        max_keys: int = 4096,
    ) -> None:
        self.policy = policy or BreakerPolicy()
        self.clock = clock
        self.max_keys = max_keys
        self._breakers: Dict[str, CircuitBreaker] = {}
        self.trips = 0
        self.fast_fails = 0

    def _get(self, key: str) -> CircuitBreaker:
        breaker = self._breakers.get(key)
        if breaker is None:
            if len(self._breakers) >= self.max_keys:
                self._evict()
            breaker = CircuitBreaker(key, self.policy, self.clock)
            self._breakers[key] = breaker
        return breaker

    def _evict(self) -> None:
        """Drop the stalest closed breaker (open ones hold real verdicts)."""
        closed = [b for b in self._breakers.values() if b.state == CLOSED]
        pool = closed or list(self._breakers.values())
        stalest = min(pool, key=lambda b: b.last_touch)
        del self._breakers[stalest.key]

    # -------------------------------------------------------------- gating
    def admit(self, key: str) -> None:
        """Raise :class:`BreakerOpen` if ``key``'s breaker refuses."""
        breaker = self._breakers.get(key)
        if breaker is None:
            return  # no history: implicitly closed, allocate nothing
        try:
            breaker.admit()
        except BreakerOpen:
            self.fast_fails += 1
            raise

    def record_failure(self, key: str, fault: str, message: str) -> bool:
        tripped = self._get(key).record_failure(fault, message)
        if tripped:
            self.trips += 1
        return tripped

    def record_success(self, key: str) -> None:
        breaker = self._breakers.get(key)
        if breaker is not None:
            if breaker.state == CLOSED and not breaker.failures:
                return  # hot path: nothing to reset
            breaker.record_success()

    # ------------------------------------------------------------ exposure
    def open_keys(self) -> List[str]:
        return sorted(
            k for k, b in self._breakers.items() if b.state != CLOSED
        )

    def snapshot(self) -> Dict[str, Any]:
        """Status document for ``/statusz`` / the chaos harness."""
        return {
            "keys": len(self._breakers),
            "open": self.open_keys(),
            "trips": self.trips,
            "fast_fails": self.fast_fails,
        }
