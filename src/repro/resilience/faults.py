"""Deterministic fault injection: a seeded plan the whole stack consults.

A :class:`FaultPlan` is parsed from the ``--inject-faults`` spec string and
describes *exactly* which failures to manufacture, so CI can prove every
recovery path in :mod:`repro.resilience.supervisor` actually fires instead
of hoping production hits them first.  Faults come in three groups:

- **Process faults** (exercised only inside supervised worker processes):
  ``crash@I`` kills the worker with ``os._exit`` when task ``I`` starts,
  ``hang@I`` parks it until the supervisor's wall-clock timeout kills it.
  Both default to the first attempt only (``crash@I:K`` extends to the
  first ``K`` attempts), so a retry after respawn succeeds and proves the
  whole loop.
- **Exception faults** (safe in any mode): ``flaky@I[:K]`` raises
  :class:`~repro.errors.TransientFault` on the first ``K`` attempts
  (default 1 — transient-then-success), ``fatal@I`` raises
  :class:`~repro.errors.PermanentFault` on every attempt.
- **Memory-model faults**: ``dram-drop=P`` drops/retries that fraction of
  DRAM responses (each dropped response costs ``dram-delay=C`` extra core
  cycles, default 200), ``sram-latency=F`` multiplies SRAM access latency
  and ``sram-capacity=F`` scales the capacity assumption the latency model
  sees.  The hooks in :mod:`repro.memory.dram`/:mod:`repro.memory.sram`
  cost one global ``is None`` check when no plan is active, preserving the
  repo's zero-overhead-when-off contract.
- **Checkpoint faults**: ``corrupt-checkpoint@I`` truncates the journal
  record of task ``I`` as it is written, so resume's skip-and-warn path is
  exercised end to end.
- **Store faults**: ``corrupt-store`` (or ``corrupt-store=MODE`` with
  ``truncate``/``checksum``/``schema``/``torn``/``any``) damages persistent
  result-store records as :mod:`repro.store` writes them — which record gets
  which damage is drawn deterministically from the seed and the record's
  digest — so the store's checksum/schema verification and skip-and-warn
  recompute path are provable in CI.
- **Audit faults**: ``audit-break=INVARIANT`` deliberately flips the named
  audit invariant (or every one, with ``audit-break=any``) to *failed* the
  moment :mod:`repro.audit` evaluates it, so the catch → shrink → corpus
  pipeline of ``repro fuzz`` — and the runner's AuditFault surfacing — can
  be proven without planting a real model bug.
- **Serve faults**: ``serve=conn-reset,slowloris,truncated-body,worker-crash
  [,rate=R,seed=N,poison=NAME]`` arms the serving plane's chaos campaign.
  ``worker-crash`` makes a pre-forked serve *worker* ``os._exit`` at rate
  ``R`` per handled request (only in supervised workers — a single-process
  daemon ignores it rather than committing suicide) and ``conn-reset``
  aborts that fraction of accepted connections before reading the request.
  ``slowloris`` and ``truncated-body`` are *client-side* behaviors: the
  campaign driver (``tools/serve_chaos.py``) reads the same plan and plays
  them against the daemon, so one spec string seeds both ends
  deterministically.  ``poison=NAME`` makes any query whose spec name
  contains ``NAME`` raise :class:`~repro.errors.AuditFault` at pricing
  time — the seeded poison spec the per-fingerprint circuit breaker must
  trip on.

All randomness derives from ``seed=N`` (default 0) plus stable event
counters — two runs of the same plan over the same work inject the same
faults.  ``plan.counters`` records how often each class fired, which is
how tests prove a fault was actually exercised.
"""

from __future__ import annotations

import dataclasses
import os
import random
import time
from typing import Dict, Optional, Set, Tuple

from ..errors import ConfigError, PermanentFault, TransientFault

__all__ = [
    "FaultPlan",
    "ACTIVE",
    "activate",
    "deactivate",
    "get_active",
]

#: Seconds a ``hang@I`` worker parks for — effectively forever next to any
#: sane ``--task-timeout``, while still bounded if nothing ever kills it.
HANG_SECONDS = 3600.0

#: Damage modes ``corrupt-store`` can apply to a persistent record.
STORE_CORRUPTION_MODES = ("truncate", "checksum", "schema", "torn")

#: Chaos modes the serving plane understands.  ``worker-crash`` and
#: ``conn-reset`` fire server-side; ``slowloris`` and ``truncated-body``
#: are played by the campaign client off the same plan.
SERVE_FAULT_MODES = ("conn-reset", "slowloris", "truncated-body", "worker-crash")


@dataclasses.dataclass
class FaultPlan:
    """A parsed, seeded fault-injection plan (see module docstring)."""

    seed: int = 0
    #: task index -> highest attempt number the fault still fires on.
    crash: Dict[int, int] = dataclasses.field(default_factory=dict)
    hang: Dict[int, int] = dataclasses.field(default_factory=dict)
    flaky: Dict[int, int] = dataclasses.field(default_factory=dict)
    fatal: Set[int] = dataclasses.field(default_factory=set)
    dram_drop: float = 0.0
    dram_delay_cycles: float = 200.0
    sram_latency_factor: float = 1.0
    sram_capacity_factor: float = 1.0
    corrupt_checkpoint: Set[int] = dataclasses.field(default_factory=set)
    #: Store-record damage mode ("" = off; "any" picks per record).
    corrupt_store: str = ""
    #: Audit invariant id to break deliberately ("any" matches them all).
    audit_break: str = ""
    #: Armed serve chaos modes (subset of :data:`SERVE_FAULT_MODES`).
    serve: Set[str] = dataclasses.field(default_factory=set)
    #: Per-event probability for rate-based serve faults.
    serve_rate: float = 0.1
    #: Spec-name substring that AuditFaults at serve pricing time.
    poison_spec: str = ""
    spec: str = ""
    #: Firing counts per fault class (proof the path was exercised).
    counters: Dict[str, int] = dataclasses.field(default_factory=dict)
    _dram_seq: int = dataclasses.field(default=0, repr=False)

    # ------------------------------------------------------------- parsing
    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a comma-separated spec, e.g. ``"crash@1,dram-drop=0.1,seed=7"``."""
        plan = cls(spec=spec)
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            if token == "corrupt-store":
                plan.corrupt_store = "any"
                continue
            if plan.serve and token in SERVE_FAULT_MODES:
                # Continuation of an open ``serve=`` list: the canonical
                # spelling is ``serve=conn-reset,slowloris,worker-crash``.
                plan.serve.add(token)
                continue
            if "@" in token:
                name, _, target = token.partition("@")
                index, _, attempts = target.partition(":")
                try:
                    idx = int(index)
                    upto = int(attempts) if attempts else 1
                except ValueError:
                    raise ConfigError(
                        "fault target must be IDX[:ATTEMPTS]",
                        field="--inject-faults", value=token,
                    ) from None
                if name == "crash":
                    plan.crash[idx] = upto
                elif name == "hang":
                    plan.hang[idx] = upto
                elif name == "flaky":
                    plan.flaky[idx] = upto
                elif name == "fatal":
                    plan.fatal.add(idx)
                elif name == "corrupt-checkpoint":
                    plan.corrupt_checkpoint.add(idx)
                else:
                    raise ConfigError(
                        "unknown fault kind",
                        field="--inject-faults", value=token,
                    )
            elif "=" in token:
                name, _, raw = token.partition("=")
                if name == "audit-break":
                    # String-valued: the invariant id (or "any") to break.
                    if not raw:
                        raise ConfigError(
                            "audit-break needs an invariant id or 'any'",
                            field="--inject-faults", value=token,
                        )
                    plan.audit_break = raw
                    continue
                if name == "serve":
                    # String-valued: the first of possibly several serve
                    # chaos modes; later bare mode tokens extend the set.
                    if raw not in SERVE_FAULT_MODES:
                        raise ConfigError(
                            "serve fault mode must be one of "
                            + "/".join(SERVE_FAULT_MODES),
                            field="--inject-faults", value=token,
                        )
                    plan.serve.add(raw)
                    continue
                if name == "poison":
                    if not raw:
                        raise ConfigError(
                            "poison needs a spec-name substring",
                            field="--inject-faults", value=token,
                        )
                    plan.poison_spec = raw
                    continue
                if name == "corrupt-store":
                    # String-valued: one damage mode, or "any" to rotate.
                    if raw not in STORE_CORRUPTION_MODES + ("any",):
                        raise ConfigError(
                            "corrupt-store mode must be one of "
                            + "/".join(STORE_CORRUPTION_MODES + ("any",)),
                            field="--inject-faults", value=token,
                        )
                    plan.corrupt_store = raw
                    continue
                try:
                    value = float(raw)
                except ValueError:
                    raise ConfigError(
                        "fault parameter must be numeric",
                        field="--inject-faults", value=token,
                    ) from None
                if name == "seed":
                    plan.seed = int(value)
                elif name == "rate":
                    if not 0.0 <= value <= 1.0:
                        raise ConfigError(
                            "serve fault rate must be in [0, 1]",
                            field="--inject-faults", value=token,
                        )
                    plan.serve_rate = value
                elif name == "dram-drop":
                    if not 0.0 <= value <= 1.0:
                        raise ConfigError(
                            "drop probability must be in [0, 1]",
                            field="--inject-faults", value=token,
                        )
                    plan.dram_drop = value
                elif name == "dram-delay":
                    plan.dram_delay_cycles = value
                elif name == "sram-latency":
                    plan.sram_latency_factor = value
                elif name == "sram-capacity":
                    plan.sram_capacity_factor = value
                else:
                    raise ConfigError(
                        "unknown fault parameter",
                        field="--inject-faults", value=token,
                    )
            else:
                raise ConfigError(
                    "fault tokens are KIND@IDX[:N] or NAME=VALUE",
                    field="--inject-faults", value=token,
                )
        return plan

    # ---------------------------------------------------------- accounting
    def _count(self, name: str) -> None:
        self.counters[name] = self.counters.get(name, 0) + 1

    # ------------------------------------------------------ process faults
    def maybe_process_fault(self, index: int, attempt: int) -> None:
        """Kill or park the *current process* if the plan says so.

        Only ever called from inside a supervised worker — the degraded
        serial path skips it so an injected crash cannot take down the
        supervisor itself.
        """
        if self.crash.get(index, 0) >= attempt:
            os._exit(137)  # simulate a SIGKILL'd / OOM-killed worker
        if self.hang.get(index, 0) >= attempt:
            # Park in small slices so an explicit terminate() lands fast.
            deadline = time.monotonic() + HANG_SECONDS
            while time.monotonic() < deadline:
                time.sleep(0.25)

    def maybe_raise_fault(self, index: int, attempt: int) -> None:
        """Raise an injected exception fault for this (task, attempt)."""
        if index in self.fatal:
            self._count("fatal")
            raise PermanentFault(
                f"injected permanent fault on task {index} (attempt {attempt})"
            )
        if self.flaky.get(index, 0) >= attempt:
            self._count("flaky")
            raise TransientFault(
                f"injected transient fault on task {index} (attempt {attempt})"
            )

    # ------------------------------------------------------- memory faults
    def perturb_dram_cycles(self, cycles: float) -> float:
        """Price a possibly-dropped DRAM response (deterministic per seed)."""
        if self.dram_drop <= 0.0:
            return cycles
        self._dram_seq += 1
        rng = random.Random(f"{self.seed}:dram:{self._dram_seq}")
        if rng.random() < self.dram_drop:
            self._count("dram_dropped")
            return cycles + self.dram_delay_cycles
        return cycles

    def sram_effective_capacity(self, capacity_bytes: int) -> float:
        """The capacity the SRAM latency model should *believe* it has."""
        if self.sram_capacity_factor == 1.0:
            return capacity_bytes
        self._count("sram_capacity_flipped")
        return capacity_bytes * self.sram_capacity_factor

    def perturb_sram_latency(self, latency_ns: float) -> float:
        if self.sram_latency_factor == 1.0:
            return latency_ns
        self._count("sram_latency_flipped")
        return latency_ns * self.sram_latency_factor

    # -------------------------------------------------------- audit faults
    def breaks_invariant(self, invariant: str) -> bool:
        """True if the named audit invariant should be flipped to failed."""
        if not self.audit_break:
            return False
        if self.audit_break == "any" or self.audit_break == invariant:
            self._count("audit_break")
            return True
        return False

    # -------------------------------------------------------- serve faults
    def serve_fires(self, mode: str, seq: int) -> bool:
        """Should rate-based serve fault ``mode`` fire for event ``seq``?

        Deterministic per (seed, mode, seq): the campaign driver and the
        daemon draw identical schedules from one spec string.
        """
        if mode not in self.serve:
            return False
        rng = random.Random(f"{self.seed}:serve:{mode}:{seq}")
        if rng.random() < self.serve_rate:
            self._count(f"serve_{mode.replace('-', '_')}")
            return True
        return False

    def poison_matches(self, name: str) -> bool:
        """True if a spec named ``name`` should AuditFault at pricing time."""
        if self.poison_spec and self.poison_spec in (name or ""):
            self._count("serve_poison")
            return True
        return False

    # -------------------------------------------------------- store faults
    def store_corruption(self, digest: str) -> Optional[str]:
        """Damage mode for a persistent record being written, or None.

        Deterministic per (seed, digest): the same plan corrupts the same
        records the same way on every run, so corruption tests replay.
        """
        if not self.corrupt_store:
            return None
        self._count("store_corrupted")
        if self.corrupt_store != "any":
            return self.corrupt_store
        rng = random.Random(f"{self.seed}:store:{digest}")
        return rng.choice(STORE_CORRUPTION_MODES)

    # --------------------------------------------------- checkpoint faults
    def should_corrupt_checkpoint(self, index: int) -> bool:
        """True (once) if this task's journal record should be torn."""
        if index in self.corrupt_checkpoint:
            self.corrupt_checkpoint.discard(index)
            self._count("checkpoint_corrupted")
            return True
        return False


#: The process-wide active plan; ``None`` (the default) costs the memory
#: models a single global load + identity check per priced transfer.
ACTIVE: Optional[FaultPlan] = None


def activate(plan: FaultPlan) -> FaultPlan:
    """Install ``plan`` as the process-wide active fault plan."""
    global ACTIVE
    ACTIVE = plan
    return plan


def deactivate() -> None:
    global ACTIVE
    ACTIVE = None


def get_active() -> Optional[FaultPlan]:
    return ACTIVE
