"""Crash-safe filesystem primitives: atomic replace + durable appends.

Every ``results/`` artifact this harness writes must survive a ``kill -9``
mid-write without leaving a torn file behind:

- :func:`atomic_write_text` / :func:`atomic_write_bytes` — write to a
  temporary file in the *same directory* (same filesystem, so the final
  rename is atomic), fsync it, then ``os.replace`` onto the target.  A
  reader therefore only ever sees the old complete file or the new
  complete file, never a prefix.
- :func:`crash_safe_append` — append one complete line with an
  ``O_APPEND`` write followed by flush (+ optional fsync).  Appends of a
  single small line are effectively atomic on POSIX, so a journal either
  gains the whole record or none of it; a torn tail can only be the very
  last line, which journal readers skip-and-warn on.
"""

from __future__ import annotations

import os
import pathlib
import tempfile
from typing import Union

__all__ = [
    "atomic_write_text",
    "atomic_write_bytes",
    "crash_safe_append",
]

PathLike = Union[str, "os.PathLike[str]"]


def atomic_write_bytes(path: PathLike, data: bytes) -> pathlib.Path:
    """Atomically replace ``path`` with ``data``; returns the path written."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        try:
            os.write(fd, data)
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp_name, path)
    except BaseException:
        # Never leave the temp file behind, even on KeyboardInterrupt.
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_text(path: PathLike, text: str) -> pathlib.Path:
    """Atomically replace ``path`` with ``text`` (UTF-8)."""
    return atomic_write_bytes(path, text.encode("utf-8"))


def crash_safe_append(path: PathLike, line: str, fsync: bool = True) -> pathlib.Path:
    """Append one complete line (newline added if missing) durably.

    The line is issued as a single ``write()`` on an ``O_APPEND`` handle;
    with ``fsync=True`` the record is on disk before this returns, so a
    subsequent crash cannot lose it.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if not line.endswith("\n"):
        line += "\n"
    with path.open("a", encoding="utf-8") as handle:
        handle.write(line)
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    return path
