"""Lease-based task ownership: fsync'd lease files with expiry and fencing.

A lease is one small JSON file owned by whichever process most recently
acquired it.  The protocol is the minimum a crash-safe distributed work
queue needs (see :mod:`repro.dse.queue` for the consumer):

- **acquire** — create ``<task>.lease`` atomically (temp file + fsync +
  ``os.link``, which fails if the path already exists, so two workers
  racing on a free lease resolve at the filesystem level);
- **renew** — atomically replace the record with a later expiry (same
  owner, same generation), keeping long tasks owned;
- **steal** — once a record's ``expires_at`` is in the past the owner is
  presumed kill -9'd or hung, and any survivor may atomically replace
  the record with its own, bumping the **generation** counter — the
  fencing token that tells every later reader how many ownership
  transfers the task has survived (a hung worker waking after its lease
  was stolen sees a foreign owner/newer generation and must not assume
  ownership);
- **release** — unlink, freeing the task for normal completion cleanup.

Leases guarantee *liveness* (a dead owner's work is reclaimed after the
TTL), not mutual exclusion against arbitrarily delayed writers — a stolen
worker may still finish its task.  Consumers must therefore keep task
effects idempotent (the DSE queue journals deterministic results keyed by
task id, so a double completion writes identical bytes and readers
last-write-win).  That is the standard lease contract, stated honestly.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import tempfile
import time
from typing import Optional

from .atomic import atomic_write_text

__all__ = [
    "LEASE_SCHEMA",
    "LeaseRecord",
    "read_lease",
    "try_acquire",
    "renew",
    "release",
]

LEASE_SCHEMA = 1


@dataclasses.dataclass(frozen=True)
class LeaseRecord:
    """The on-disk claim one worker holds on one task."""

    owner: str  # worker id (unique per process incarnation)
    generation: int  # ownership transfers so far (1 = first claim)
    acquired_at: float  # unix seconds
    expires_at: float  # unix seconds; past this the lease is stealable

    def expired(self, now: Optional[float] = None) -> bool:
        return (time.time() if now is None else now) >= self.expires_at

    def to_json(self) -> str:
        return json.dumps(
            {
                "schema": LEASE_SCHEMA,
                "owner": self.owner,
                "generation": self.generation,
                "acquired_at": self.acquired_at,
                "expires_at": self.expires_at,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "LeaseRecord":
        doc = json.loads(text)
        if doc.get("schema") != LEASE_SCHEMA:
            raise ValueError(f"unknown lease schema {doc.get('schema')!r}")
        return cls(
            owner=str(doc["owner"]),
            generation=int(doc["generation"]),
            acquired_at=float(doc["acquired_at"]),
            expires_at=float(doc["expires_at"]),
        )


def read_lease(path) -> Optional[LeaseRecord]:
    """The current lease record, or None (missing / torn — torn means a
    writer died mid-replace; the temp+rename protocol makes that a missing
    file, but a hand-damaged record is treated as free too, with the same
    worst case: one duplicated idempotent evaluation)."""
    path = pathlib.Path(path)
    try:
        text = path.read_text()
    except OSError:
        return None
    try:
        return LeaseRecord.from_json(text)
    except (ValueError, KeyError, TypeError):
        return None


def _write_new(path: pathlib.Path, record: LeaseRecord) -> bool:
    """Create ``path`` with ``record`` iff it does not exist (atomic).

    ``os.link`` from a private temp file either installs the complete
    record or fails with EEXIST — the filesystem arbitrates racing
    acquirers.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        try:
            os.write(fd, record.to_json().encode("utf-8"))
            os.fsync(fd)
        finally:
            os.close(fd)
        try:
            os.link(tmp_name, path)
        except FileExistsError:
            return False
        return True
    finally:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass


def try_acquire(
    path,
    owner: str,
    ttl_s: float,
    now: Optional[float] = None,
) -> Optional[LeaseRecord]:
    """Claim the lease at ``path`` for ``owner``, stealing it if expired.

    Returns the :class:`LeaseRecord` now held (fresh claim at generation 1,
    or a steal at ``previous.generation + 1``), or None when another owner
    holds an unexpired lease.
    """
    now = time.time() if now is None else now
    path = pathlib.Path(path)
    fresh = LeaseRecord(
        owner=owner, generation=1, acquired_at=now, expires_at=now + ttl_s
    )
    if _write_new(path, fresh):
        return fresh
    current = read_lease(path)
    if current is None:
        # Vanished (released) or torn between our create and read: retry
        # the exclusive create once; losing again means someone else won.
        if _write_new(path, fresh):
            return fresh
        current = read_lease(path)
        if current is None:
            return None
    if current.owner == owner and not current.expired(now):
        return current  # already ours (re-entrant claim)
    if not current.expired(now):
        return None
    stolen = LeaseRecord(
        owner=owner,
        generation=current.generation + 1,
        acquired_at=now,
        expires_at=now + ttl_s,
    )
    # Two survivors can both observe expiry and both replace; one rename
    # lands last and wins. The loser's evaluation is idempotent by the
    # consumer contract, so the race costs duplicated work, not corruption.
    atomic_write_text(path, stolen.to_json())
    return stolen


def renew(path, owner: str, ttl_s: float, now: Optional[float] = None) -> Optional[LeaseRecord]:
    """Extend ``owner``'s lease; returns the new record, or None when the
    lease is no longer theirs (stolen after an expiry — the caller should
    abandon ownership assumptions and let its in-flight work stand as an
    idempotent duplicate)."""
    now = time.time() if now is None else now
    current = read_lease(path)
    if current is None or current.owner != owner:
        return None
    renewed = dataclasses.replace(current, expires_at=now + ttl_s)
    atomic_write_text(path, renewed.to_json())
    return renewed


def release(path, owner: str) -> bool:
    """Drop ``owner``'s lease; True if it was held by ``owner`` and removed."""
    current = read_lease(path)
    if current is None or current.owner != owner:
        return False
    try:
        os.unlink(path)
    except OSError:
        return False
    return True
