"""Fault-tolerant run engine: checkpoint/resume, supervision, fault injection.

Four pieces, designed so a hung worker, an OOM'd process or a mid-run
``kill -9`` can no longer void hours of simulation:

- :mod:`repro.resilience.atomic` — crash-safe artifact writes
  (write-to-temp + ``os.replace``, fsync'd single-line appends);
- :mod:`repro.resilience.checkpoint` — the ``results/<run_id>/
  checkpoint.jsonl`` journal of completed experiment results keyed by
  ``(experiment, config-fingerprint)``, powering ``repro run --resume``;
- :mod:`repro.resilience.supervisor` — the worker-supervision engine
  behind ``--jobs``: per-task wall-clock timeouts, seeded exponential
  backoff retries, pool respawn after crashes, graceful degradation to
  serial execution, all accounted in an error budget;
- :mod:`repro.resilience.faults` — deterministic, seeded fault injection
  (``--inject-faults``) spanning worker crashes/hangs, transient and
  permanent exceptions, DRAM response drops, SRAM latency/capacity flips
  and checkpoint-record corruption, so CI proves every recovery path;
- :mod:`repro.resilience.lease` — fsync'd lease files with expiry,
  generation fencing and steal-on-expiry, the ownership primitive behind
  the :mod:`repro.dse` sharded work queue;
- :mod:`repro.resilience.quarantine` — the replayable poison-task journal
  (park a config that keeps crashing/AuditFaulting instead of retrying it
  forever or failing the sweep);
- :mod:`repro.resilience.breaker` — per-fingerprint circuit breakers for
  the serving plane (closed → open → half-open), turning a spec that
  deterministically fails into a fast, honest 422 instead of a re-run.

The fault taxonomy itself (:class:`~repro.errors.TransientFault`,
:class:`~repro.errors.PermanentFault`, :class:`~repro.errors.AuditFault`,
:class:`~repro.errors.ConfigError`) lives in :mod:`repro.errors`.

Zero-overhead contract: with no resilience flags, nothing here runs on
the hot path beyond one ``is None`` check in the memory models, and every
default run's stdout and artifacts stay byte-identical.
"""

from ..errors import (
    AuditFault,
    ConfigError,
    FaultError,
    PermanentFault,
    ReproError,
    TransientFault,
    classify_error,
)
from .atomic import atomic_write_bytes, atomic_write_text, crash_safe_append
from .faults import FaultPlan, activate, deactivate, get_active
from .lease import LeaseRecord, read_lease, release, renew, try_acquire

__all__ = [
    "ReproError",
    "ConfigError",
    "FaultError",
    "TransientFault",
    "PermanentFault",
    "AuditFault",
    "classify_error",
    "atomic_write_bytes",
    "atomic_write_text",
    "crash_safe_append",
    "FaultPlan",
    "activate",
    "deactivate",
    "get_active",
    "LeaseRecord",
    "read_lease",
    "try_acquire",
    "renew",
    "release",
    # Imported lazily to keep the memory substrates' fault hooks cheap and
    # cycle-free: repro.resilience.checkpoint / repro.resilience.supervisor /
    # repro.resilience.quarantine / repro.resilience.breaker (which pull in
    # the obs layer).
    "checkpoint",
    "supervisor",
    "quarantine",
    "breaker",
]


def __getattr__(name: str):
    # Lazy submodule access: `repro.resilience.checkpoint` pulls in the
    # harness/report layer, which must not load just because a memory
    # model touched the fault hooks.
    if name in ("checkpoint", "supervisor", "quarantine", "breaker"):
        import importlib

        return importlib.import_module(f".{name}", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
