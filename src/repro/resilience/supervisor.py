"""Worker supervision: timeouts, retries with backoff, pool respawn, degrade.

The harness used to fan experiments over a bare ``ProcessPoolExecutor``
and call ``future.result()`` in order — one hung or OOM-killed worker
voided the whole sweep.  :class:`Supervisor` replaces that submit loop:

- **wall-clock timeouts** — each task gets ``timeout_s`` from the moment
  it is handed to the pool; a task that blows its deadline has its pool
  *killed* (a hung worker cannot be cancelled politely) and is charged a
  :class:`~repro.errors.TransientFault`, while innocent co-resident tasks
  are requeued without losing an attempt;
- **retries with exponential backoff + jitter** — transient failures are
  rescheduled after ``backoff_base_s * 2**(attempt-1)`` (capped), with a
  jitter fraction drawn from a :class:`random.Random` seeded by
  ``(seed, task, attempt)`` so the schedule is deterministic under a seed;
- **pool respawn** — a crashed worker breaks the whole
  ``ProcessPoolExecutor``; the supervisor builds a fresh pool and
  resubmits the survivors.  After ``max_pool_respawns`` consecutive
  deaths it **degrades to serial** execution in the supervising process
  (process-level fault injection is disabled there by construction), so
  a sweep limps home instead of dying;
- **classification** — every failure is mapped onto the
  :class:`TransientFault` / :class:`PermanentFault` /
  :class:`AuditFault` taxonomy by :func:`repro.errors.classify_error`;
  only transients are retried;
- **clean interrupts** — on ``KeyboardInterrupt`` the pool is torn down
  (workers ignore SIGINT via their initializer, so there is no traceback
  spray) and the interrupt propagates to the caller, which flushes its
  checkpoint journal and exits 130.

Everything the supervisor observed — retries, timeouts, respawns,
per-class fault counts — lands in an :class:`ErrorBudget` for the run
manifest and as :mod:`repro.obs` events.
"""

from __future__ import annotations

import dataclasses
import random
import signal
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import (
    AuditFault,
    PermanentFault,
    TransientFault,
    classify_error,
)
from ..obs import log as obs_log

__all__ = [
    "RetryPolicy",
    "TaskSpec",
    "TaskFailure",
    "ErrorBudget",
    "SupervisorReport",
    "Supervisor",
]


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Retry/timeout knobs of one supervised run."""

    #: Retries *beyond* the first attempt for transient faults.
    max_retries: int = 2
    #: Per-task wall-clock limit in seconds (None = no timeout).
    timeout_s: Optional[float] = None
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    #: Fraction of the backoff randomised (0 = fully deterministic delay).
    jitter: float = 0.5
    #: Seed for the jitter stream — same seed, same schedule.
    seed: int = 0
    #: Consecutive pool deaths tolerated before degrading to serial.
    max_pool_respawns: int = 3

    def backoff_s(self, task_index: int, attempt: int) -> float:
        """Deterministic backoff before retry number ``attempt`` (>= 2)."""
        base = min(
            self.backoff_cap_s, self.backoff_base_s * (2 ** max(0, attempt - 2))
        )
        rng = random.Random(f"{self.seed}:backoff:{task_index}:{attempt}")
        return base * (1.0 - self.jitter) + base * self.jitter * rng.random()


@dataclasses.dataclass(frozen=True)
class TaskSpec:
    """One unit of supervised work."""

    index: int  # stable 0-based position in the scheduled task list
    key: str  # human-readable label (the experiment id)
    payload: Any  # forwarded to the task function verbatim


@dataclasses.dataclass
class TaskFailure:
    """A task that exhausted its attempts (or failed permanently)."""

    index: int
    key: str
    fault: str  # taxonomy class name
    message: str
    attempts: int


@dataclasses.dataclass
class ErrorBudget:
    """Everything the supervisor survived, for the manifest + obs events."""

    tasks: int = 0
    succeeded: int = 0
    failed: int = 0
    transient_retries: int = 0
    timeouts: int = 0
    pool_respawns: int = 0
    degraded_serial: bool = False
    faults_by_class: Dict[str, int] = dataclasses.field(default_factory=dict)

    def count_fault(self, fault_class: str) -> None:
        self.faults_by_class[fault_class] = (
            self.faults_by_class.get(fault_class, 0) + 1
        )

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class SupervisorReport:
    """Outcome of one supervised run."""

    results: Dict[int, Any]
    failures: List[TaskFailure]
    budget: ErrorBudget

    @property
    def ok(self) -> bool:
        return not self.failures


def _ignore_sigint() -> None:  # pragma: no cover - runs in pool workers
    """Pool-worker initializer: the supervisor owns interrupt handling."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)


class _PoolDied(Exception):
    """Internal: the process pool broke under us (crash or timeout kill)."""


class Supervisor:
    """Runs :class:`TaskSpec` s through ``fn`` under a retry/timeout policy.

    ``fn(payload, index, attempt)`` must be picklable (module-level) when
    ``jobs > 1``; it runs in a pool worker or, after degradation, in this
    process.  ``on_result(task, result)`` fires in the supervising process
    as each task completes — the runner uses it to journal checkpoints.
    """

    #: Seconds between deadline sweeps while waiting on the pool.
    _POLL_S = 0.1

    def __init__(
        self,
        fn: Callable[[Any, int, int], Any],
        jobs: int = 1,
        policy: RetryPolicy = RetryPolicy(),
        on_result: Optional[Callable[[TaskSpec, Any], None]] = None,
    ) -> None:
        self.fn = fn
        self.jobs = max(1, int(jobs))
        self.policy = policy
        self.on_result = on_result
        self._pool = None

    # ------------------------------------------------------------ plumbing
    def _new_pool(self):
        from concurrent.futures import ProcessPoolExecutor

        return ProcessPoolExecutor(
            max_workers=self.jobs, initializer=_ignore_sigint
        )

    def _kill_pool(self) -> None:
        """Tear the pool down hard — hung workers get SIGKILL."""
        pool = self._pool
        self._pool = None
        if pool is None:
            return
        processes = list(getattr(pool, "_processes", {}).values())
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except TypeError:  # pragma: no cover - cancel_futures needs 3.9+
            pool.shutdown(wait=False)
        for proc in processes:
            if proc.is_alive():
                proc.kill()
        for proc in processes:
            proc.join(timeout=5)

    # ------------------------------------------------------------- running
    def run(self, tasks: Sequence[TaskSpec]) -> SupervisorReport:
        # Imported here, not at module top: obs.flight pulls in
        # resilience.atomic, and this module is imported by the package init.
        from ..obs.flight.beacon import get_beacon
        from ..obs.flight.recorder import maybe_dump

        beacon = get_beacon()
        beacon.tasks_total += len(tasks)
        beacon.update(workers=self.jobs)
        budget = ErrorBudget(tasks=len(tasks))
        results: Dict[int, Any] = {}
        failures: List[TaskFailure] = []
        # (task, attempt) queues: ready now, and ready at a future time.
        ready: List[Tuple[TaskSpec, int]] = [(t, 1) for t in tasks]
        delayed: List[Tuple[float, TaskSpec, int]] = []
        outstanding: Dict[Any, Tuple[TaskSpec, int, Optional[float]]] = {}
        consecutive_deaths = 0

        def record_failure(task: TaskSpec, attempt: int, fault, message: str) -> None:
            budget.failed += 1
            budget.count_fault(fault.__name__)
            beacon.task_done(task.key, ok=False)
            failures.append(
                TaskFailure(
                    index=task.index, key=task.key, fault=fault.__name__,
                    message=message, attempts=attempt,
                )
            )
            obs_log.error(
                "supervisor.task_failed",
                task=task.key, index=task.index, fault=fault.__name__,
                attempts=attempt, error=message,
            )

        def retry_or_fail(task: TaskSpec, attempt: int, fault, message: str) -> None:
            if fault.retryable and attempt <= self.policy.max_retries:
                budget.transient_retries += 1
                budget.count_fault(fault.__name__)
                beacon.retries += 1
                beacon.active.pop(task.key, None)
                delay = self.policy.backoff_s(task.index, attempt + 1)
                delayed.append((time.monotonic() + delay, task, attempt + 1))
                obs_log.warning(
                    "supervisor.retry",
                    task=task.key, index=task.index, attempt=attempt,
                    fault=fault.__name__, backoff_s=round(delay, 4),
                    error=message,
                )
            else:
                record_failure(task, attempt, fault, message)

        def succeed(task: TaskSpec, attempt: int, value: Any) -> None:
            results[task.index] = value
            budget.succeeded += 1
            beacon.task_done(task.key, ok=True)
            if self.on_result is not None:
                self.on_result(task, value)

        def run_serial(task: TaskSpec, attempt: int) -> None:
            """Degraded-mode execution in the supervising process."""
            beacon.task_started(task.key)
            try:
                value = self.fn(task.payload, task.index, attempt)
            except KeyboardInterrupt:
                raise
            except BaseException as err:
                retry_or_fail(task, attempt, classify_error(err), repr(err))
            else:
                succeed(task, attempt, value)

        from concurrent.futures import FIRST_COMPLETED, wait
        from concurrent.futures.process import BrokenProcessPool

        if self.jobs > 1:
            self._pool = self._new_pool()
        degraded = self._pool is None and self.jobs > 1

        try:
            while ready or delayed or outstanding:
                now = time.monotonic()
                # Promote delayed retries whose backoff elapsed.
                still_delayed = []
                for ready_at, task, attempt in delayed:
                    if ready_at <= now:
                        ready.append((task, attempt))
                    else:
                        still_delayed.append((ready_at, task, attempt))
                delayed = still_delayed

                if self._pool is None:
                    # Serial mode (jobs == 1, or degraded after pool deaths).
                    if ready:
                        task, attempt = ready.pop(0)
                        run_serial(task, attempt)
                        beacon.update(queue_depth=len(ready) + len(delayed))
                        beacon.maybe_write()
                    elif delayed:
                        time.sleep(
                            max(0.0, min(t for t, _, _ in delayed) - now)
                        )
                    continue

                # Keep the pool full: at most `jobs` outstanding so a task's
                # deadline starts roughly when it starts executing.
                while ready and len(outstanding) < self.jobs:
                    task, attempt = ready.pop(0)
                    beacon.task_started(task.key)
                    future = self._pool.submit(
                        self.fn, task.payload, task.index, attempt
                    )
                    deadline = (
                        now + self.policy.timeout_s
                        if self.policy.timeout_s is not None
                        else None
                    )
                    outstanding[future] = (task, attempt, deadline)

                beacon.update(queue_depth=len(ready) + len(delayed))
                beacon.maybe_write()

                if not outstanding:
                    if delayed:
                        time.sleep(
                            max(0.0, min(t for t, _, _ in delayed) - now)
                        )
                    continue

                done, _ = wait(
                    list(outstanding), timeout=self._POLL_S,
                    return_when=FIRST_COMPLETED,
                )
                pool_died = False
                for future in done:
                    task, attempt, _deadline = outstanding.pop(future)
                    try:
                        value = future.result()
                    except KeyboardInterrupt:
                        raise
                    except BrokenProcessPool as err:
                        # The pool is gone; every outstanding sibling will
                        # fail the same way — handle them all below.
                        retry_or_fail(
                            task, attempt, TransientFault,
                            f"worker process died: {err!r}",
                        )
                        pool_died = True
                    except BaseException as err:
                        retry_or_fail(task, attempt, classify_error(err), repr(err))
                    else:
                        succeed(task, attempt, value)

                now = time.monotonic()
                timed_out = [
                    (future, task, attempt)
                    for future, (task, attempt, deadline) in outstanding.items()
                    if deadline is not None and now > deadline and not future.done()
                ]
                if timed_out:
                    for future, task, attempt in timed_out:
                        budget.timeouts += 1
                        beacon.timeouts += 1
                        obs_log.warning(
                            "supervisor.timeout",
                            task=task.key, index=task.index, attempt=attempt,
                            timeout_s=self.policy.timeout_s,
                        )
                        maybe_dump(
                            "supervisor-timeout",
                            {"task": task.key, "index": task.index,
                             "attempt": attempt,
                             "timeout_s": self.policy.timeout_s},
                        )
                        outstanding.pop(future)
                        retry_or_fail(
                            task, attempt, TransientFault,
                            f"task exceeded {self.policy.timeout_s}s wall-clock timeout",
                        )
                    pool_died = True  # the only way to reclaim a hung worker

                if pool_died:
                    # Innocent co-resident tasks are requeued at the *same*
                    # attempt; only the culprit was charged one above.
                    for future, (task, attempt, _d) in list(outstanding.items()):
                        ready.append((task, attempt))
                        beacon.active.pop(task.key, None)
                    outstanding.clear()
                    self._kill_pool()
                    consecutive_deaths += 1
                    maybe_dump(
                        "worker-death",
                        {"consecutive_deaths": consecutive_deaths,
                         "requeued": len(ready)},
                    )
                    if consecutive_deaths > self.policy.max_pool_respawns:
                        degraded = True
                        budget.degraded_serial = True
                        obs_log.error(
                            "supervisor.degraded_serial",
                            deaths=consecutive_deaths,
                            max_respawns=self.policy.max_pool_respawns,
                        )
                    else:
                        budget.pool_respawns += 1
                        beacon.respawns += 1
                        obs_log.warning(
                            "supervisor.pool_respawn", deaths=consecutive_deaths
                        )
                        self._pool = self._new_pool()
                elif done:
                    consecutive_deaths = 0
        except KeyboardInterrupt:
            self._kill_pool()
            raise
        finally:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

        if degraded:
            budget.degraded_serial = True
        beacon.update(queue_depth=0)
        beacon.maybe_write(min_interval=0.0)  # final state, not rate-limited
        return SupervisorReport(results=results, failures=failures, budget=budget)
