"""Poison-task quarantine: park hostile work instead of burning the budget.

A *poison* task is one that keeps failing deterministically — it crashes
its worker every attempt, AuditFaults every time, or raises the same
PermanentFault on retry after retry.  Retrying it forever starves the
healthy work; failing the whole sweep over it throws away thousands of
good results.  The quarantine file is the third option: after ``N``
distinct failures the task is **parked** — appended crash-safely (fsync
per record) to ``quarantine.jsonl`` with its complete definition and its
failure history — and the sweep moves on.

Because each record carries the full task payload, quarantine is
*replayable*: ``repro dse replay <dir>`` re-runs every parked config in a
clean serial process and reports which still fail (true poison: a model
bug or a genuinely hostile config worth a corpus entry) and which now pass
(the earlier failures were environmental).  Loading deduplicates by task
id, last record wins, so re-parking after a replay is well-defined.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any, Dict, List, Optional

from ..obs import log as obs_log
from .atomic import crash_safe_append

__all__ = ["QUARANTINE_SCHEMA", "QuarantineRecord", "QuarantineFile"]

QUARANTINE_SCHEMA = 1


@dataclasses.dataclass(frozen=True)
class QuarantineRecord:
    """One parked task: identity, payload, and why it was parked."""

    task_id: str
    payload: Dict[str, Any]  # full task definition — enough to replay
    reason: str  # e.g. "failed 3 attempt(s)" / "crash-looped 4 lease(s)"
    failures: List[Dict[str, Any]]  # [{attempt, fault, error}, ...]

    def to_json(self) -> str:
        return json.dumps(
            {
                "schema": QUARANTINE_SCHEMA,
                "task_id": self.task_id,
                "payload": self.payload,
                "reason": self.reason,
                "failures": self.failures,
            },
            sort_keys=True,
        )

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "QuarantineRecord":
        return cls(
            task_id=str(doc["task_id"]),
            payload=dict(doc["payload"]),
            reason=str(doc.get("reason", "")),
            failures=list(doc.get("failures", [])),
        )


class QuarantineFile:
    """Append-only, crash-safe journal of parked tasks."""

    def __init__(self, path) -> None:
        self.path = pathlib.Path(path)

    def park(self, record: QuarantineRecord) -> None:
        crash_safe_append(self.path, record.to_json(), fsync=True)
        obs_log.warning(
            "quarantine.parked",
            path=str(self.path), task=record.task_id, reason=record.reason,
        )

    def load(self) -> Dict[str, QuarantineRecord]:
        """``{task_id: record}`` — dedup by task id, last record wins.

        Torn or corrupt lines are skipped with a warning (the journal is
        advisory: losing a record re-exposes one poison task to its
        failure cap, nothing worse).
        """
        records: Dict[str, QuarantineRecord] = {}
        if not self.path.exists():
            return records
        for lineno, line in enumerate(
            self.path.read_text().splitlines(), start=1
        ):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
                if doc.get("schema") != QUARANTINE_SCHEMA:
                    raise ValueError(f"unknown schema {doc.get('schema')!r}")
                record = QuarantineRecord.from_doc(doc)
            except (ValueError, KeyError, TypeError) as err:
                obs_log.warning(
                    "quarantine.corrupt_record",
                    path=str(self.path), line=lineno, error=str(err),
                )
                continue
            records[record.task_id] = record
        return records

    def task_ids(self) -> List[str]:
        return sorted(self.load())
