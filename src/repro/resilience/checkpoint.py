"""Checkpoint/resume: a crash-safe journal of completed experiment results.

Each completed experiment is journaled as one JSONL record in
``results/<run_id>/checkpoint.jsonl`` keyed by ``(experiment_id,
fingerprint)``, where the fingerprint reuses the structural
:func:`repro.perf.cache.fingerprint` machinery over the quick flag and the
default accelerator configs — the same keys that invalidate memoized
simulations invalidate checkpoints, so a resumed run can never serve a
result priced on a different machine model.

``repro run --resume <run_id>`` loads the journal, skips every journaled
``(experiment, fingerprint)`` pair, and reconstructs their
:class:`~repro.harness.report.ExperimentResult` objects bit-identically
(cell values round-trip through JSON exactly: Python floats are IEEE
doubles both ways, and numpy scalars are converted to their exact Python
equivalents before serialisation).  Records are appended with fsync —
a ``kill -9`` can lose at most the in-flight experiment, and a torn tail
line (or a deliberately corrupted record, see ``corrupt-checkpoint@I``
fault injection) is skipped with a warning rather than poisoning the run.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
from typing import Any, Dict, List, Optional, Tuple

from ..harness.report import ExperimentResult, Table
from ..obs import log as obs_log
from .atomic import crash_safe_append

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointJournal",
    "task_fingerprint",
    "result_to_record",
    "result_from_record",
    "load_journal",
    "journal_path",
]

CHECKPOINT_SCHEMA = 1

#: A journal key: (experiment_id, fingerprint hex digest).
Key = Tuple[str, str]


def journal_path(results_dir, run_id: str) -> pathlib.Path:
    return pathlib.Path(results_dir) / run_id / "checkpoint.jsonl"


def task_fingerprint(experiment_id: str, quick: bool) -> str:
    """Stable hex fingerprint of everything that determines a result.

    Recurses through the default accelerator configs with the simulation
    memo's :func:`~repro.perf.cache.fingerprint`, so any config field
    change — nested HBM/SRAM sub-configs included — invalidates the
    checkpoint exactly when it would invalidate cached timings.
    """
    # Imported lazily: configs pull in the memory substrates, and this
    # module must stay importable before they are.
    from ..gpu.config import V100
    from ..perf.cache import fingerprint
    from ..systolic.config import TPU_V2

    key = (
        CHECKPOINT_SCHEMA,
        experiment_id,
        bool(quick),
        fingerprint(TPU_V2),
        fingerprint(V100),
    )
    return hashlib.sha256(repr(key).encode()).hexdigest()[:16]


def _jsonify_cell(value: Any) -> Any:
    """A cell value as an exactly-round-tripping JSON scalar.

    numpy scalars are unwrapped via ``.item()`` (``np.float64`` is lossless
    to ``float``); anything else non-JSON-native falls back to ``str``,
    matching the export layer's behaviour.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return float(value)  # includes np.float64 (a float subclass)
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return _jsonify_cell(item())
        except (TypeError, ValueError):
            pass
    return str(value)


def result_to_record(
    experiment_id: str, fingerprint_hex: str, result: ExperimentResult
) -> Dict[str, Any]:
    """One journal record for a completed experiment."""
    return {
        "schema": CHECKPOINT_SCHEMA,
        "experiment": experiment_id,
        "fingerprint": fingerprint_hex,
        "result": {
            "experiment_id": result.experiment_id,
            "title": result.title,
            "tables": [
                {
                    "title": table.title,
                    "headers": [str(h) for h in table.headers],
                    "rows": [[_jsonify_cell(c) for c in row] for row in table.rows],
                }
                for table in result.tables
            ],
            "notes": [str(n) for n in result.notes],
        },
    }


def result_from_record(record: Dict[str, Any]) -> ExperimentResult:
    """Reconstruct the :class:`ExperimentResult` a record journaled."""
    payload = record["result"]
    result = ExperimentResult(payload["experiment_id"], payload["title"])
    for table in payload["tables"]:
        restored = Table(table["title"], list(table["headers"]))
        for row in table["rows"]:
            restored.rows.append(tuple(row))
        result.tables.append(restored)
    result.notes = list(payload["notes"])
    return result


def load_journal(path) -> Tuple[Dict[Key, Dict[str, Any]], int]:
    """Parse a checkpoint journal into ``{(experiment, fingerprint): record}``.

    Corrupt records — torn tails from a crash, or deliberately injected
    corruption — are *skipped with a warning* and counted, never fatal:
    the worst outcome of a bad record is recomputing one experiment.
    Returns ``(records, corrupt_count)``.
    """
    path = pathlib.Path(path)
    records: Dict[Key, Dict[str, Any]] = {}
    corrupt = 0
    if not path.exists():
        return records, corrupt
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            if record.get("schema") != CHECKPOINT_SCHEMA:
                raise ValueError(f"unknown schema {record.get('schema')!r}")
            key = (record["experiment"], record["fingerprint"])
            record["result"]["experiment_id"]  # shape check
        except (ValueError, KeyError, TypeError) as err:
            corrupt += 1
            obs_log.warning(
                "checkpoint.corrupt_record",
                path=str(path), line=lineno, error=str(err),
            )
            continue
        records[key] = record
    return records, corrupt


class CheckpointJournal:
    """Appends completed-experiment records durably (fsync per record)."""

    def __init__(self, path) -> None:
        self.path = pathlib.Path(path)
        self.appended = 0

    def append(self, record: Dict[str, Any], corrupt: bool = False) -> None:
        """Journal one record; ``corrupt=True`` tears it (fault injection)."""
        line = json.dumps(record, sort_keys=True)
        if corrupt:
            line = line[: max(1, len(line) // 2)]
        crash_safe_append(self.path, line, fsync=True)
        self.appended += 1
        obs_log.debug(
            "checkpoint.appended",
            path=str(self.path), experiment=record.get("experiment"),
            corrupt=corrupt,
        )


@dataclasses.dataclass
class ResumeState:
    """What a ``--resume`` load found: hits to skip, and bookkeeping."""

    records: Dict[Key, Dict[str, Any]]
    corrupt: int = 0

    def hit(self, experiment_id: str, fingerprint_hex: str) -> Optional[ExperimentResult]:
        record = self.records.get((experiment_id, fingerprint_hex))
        if record is None:
            return None
        return result_from_record(record)


def load_resume_state(path) -> ResumeState:
    records, corrupt = load_journal(path)
    return ResumeState(records=records, corrupt=corrupt)


__all__ += ["ResumeState", "load_resume_state"]
