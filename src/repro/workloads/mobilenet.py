"""MobileNet-v1: the depthwise-separable workload (extension study).

MobileNet is the canonical stress test for GEMM-based convolution — half its
layers are depthwise (one channel per group, K depth 1 for the GEMM engine)
and the other half are 1x1 pointwise (pure GEMM).  The extension experiments
use it to show where the channel-first machinery shines (pointwise) and
where GEMM engines fundamentally struggle (depthwise), quantifying the
paper's implicit boundary.

The table is the standard 224x224, width-1.0 MobileNet-v1: a stem conv, 13
depthwise-separable blocks (depthwise 3x3 + pointwise 1x1).
"""

from __future__ import annotations

from typing import List, Tuple, Union

from ..core.conv_spec import ConvSpec
from ..core.grouped import GroupedConvSpec

__all__ = ["mobilenet_v1", "mobilenet_v1_pointwise_only"]

#: (in_channels, hw_in, out_channels, depthwise stride) per separable block.
_BLOCKS = [
    (32, 112, 64, 1),
    (64, 112, 128, 2),
    (128, 56, 128, 1),
    (128, 56, 256, 2),
    (256, 28, 256, 1),
    (256, 28, 512, 2),
    (512, 14, 512, 1),
    (512, 14, 512, 1),
    (512, 14, 512, 1),
    (512, 14, 512, 1),
    (512, 14, 512, 1),
    (512, 14, 1024, 2),
    (1024, 7, 1024, 1),
]

LayerLike = Union[ConvSpec, GroupedConvSpec]


def mobilenet_v1(batch: int = 1) -> List[LayerLike]:
    """All conv layers: the stem, then (depthwise, pointwise) per block.

    Depthwise layers are returned as :class:`GroupedConvSpec` (callers
    dispatch on the type); pointwise as plain :class:`ConvSpec`.
    """
    layers: List[LayerLike] = [
        ConvSpec(n=batch, c_in=3, h_in=224, w_in=224, c_out=32,
                 h_filter=3, w_filter=3, stride=2, padding=1,
                 name="mobilenet.conv1"),
    ]
    for index, (c_in, hw, c_out, stride) in enumerate(_BLOCKS, start=1):
        dw_base = ConvSpec(
            n=batch, c_in=c_in, h_in=hw, w_in=hw, c_out=c_in,
            h_filter=3, w_filter=3, stride=stride, padding=1,
            name=f"mobilenet.b{index}.dw",
        )
        layers.append(GroupedConvSpec(base=dw_base, groups=c_in))
        pw_hw = hw // stride
        layers.append(
            ConvSpec(
                n=batch, c_in=c_in, h_in=pw_hw, w_in=pw_hw, c_out=c_out,
                h_filter=1, w_filter=1, stride=1, padding=0,
                name=f"mobilenet.b{index}.pw",
            )
        )
    return layers


def mobilenet_v1_pointwise_only(batch: int = 1) -> List[ConvSpec]:
    """Just the dense layers (stem + pointwise): what the GEMM engine runs
    well; the depthwise residue goes to the vector unit in practice."""
    return [layer for layer in mobilenet_v1(batch) if isinstance(layer, ConvSpec)]
