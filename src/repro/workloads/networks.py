"""Convolution-layer tables for the paper's seven benchmark CNNs (Sec. VI).

AlexNet, DenseNet-121, GoogLeNet, ResNet-50, VGG16, YOLOv2 and ZFNet, as
lists of :class:`~repro.core.conv_spec.ConvSpec` (conv layers only — the
experiments measure conv performance; FC layers are plain GEMMs outside this
study's scope, and pool/BN layers contribute negligibly on both platforms).

Shapes are the standard ImageNet-inference configurations (YOLOv2 at its
native 416x416).  Builders take the batch size so the same tables serve the
batch-64 motivation experiments (Fig 2) and the batch-8 evaluation
(Figs 15/17).  ``NETWORKS`` is the registry the harness iterates.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..core.conv_spec import ConvSpec

__all__ = [
    "alexnet",
    "vgg16",
    "resnet50",
    "googlenet",
    "densenet121",
    "yolov2",
    "zfnet",
    "NETWORKS",
    "network",
    "network_names",
]


def _conv(n, c_in, hw, c_out, f, stride=1, pad=None, name=""):
    """Helper: square conv layer with SAME-ish default padding."""
    if pad is None:
        pad = f // 2
    return ConvSpec(
        n=n, c_in=c_in, h_in=hw, w_in=hw, c_out=c_out,
        h_filter=f, w_filter=f, stride=stride, padding=pad, name=name,
    )


def alexnet(batch: int = 1) -> List[ConvSpec]:
    """AlexNet (227 input), 5 conv layers."""
    return [
        _conv(batch, 3, 227, 96, 11, stride=4, pad=0, name="alexnet.conv1"),
        _conv(batch, 96, 27, 256, 5, name="alexnet.conv2"),
        _conv(batch, 256, 13, 384, 3, name="alexnet.conv3"),
        _conv(batch, 384, 13, 384, 3, name="alexnet.conv4"),
        _conv(batch, 384, 13, 256, 3, name="alexnet.conv5"),
    ]


def zfnet(batch: int = 1) -> List[ConvSpec]:
    """ZFNet (224 input), 5 conv layers."""
    return [
        _conv(batch, 3, 224, 96, 7, stride=2, pad=1, name="zfnet.conv1"),
        _conv(batch, 96, 55, 256, 5, stride=2, pad=0, name="zfnet.conv2"),
        _conv(batch, 256, 13, 384, 3, name="zfnet.conv3"),
        _conv(batch, 384, 13, 384, 3, name="zfnet.conv4"),
        _conv(batch, 384, 13, 256, 3, name="zfnet.conv5"),
    ]


def vgg16(batch: int = 1) -> List[ConvSpec]:
    """VGG-16 (224 input), 13 3x3 conv layers."""
    plan = [
        (3, 224, 64), (64, 224, 64),
        (64, 112, 128), (128, 112, 128),
        (128, 56, 256), (256, 56, 256), (256, 56, 256),
        (256, 28, 512), (512, 28, 512), (512, 28, 512),
        (512, 14, 512), (512, 14, 512), (512, 14, 512),
    ]
    return [
        _conv(batch, c_in, hw, c_out, 3, name=f"vgg16.conv{i + 1}")
        for i, (c_in, hw, c_out) in enumerate(plan)
    ]


def resnet50(batch: int = 1) -> List[ConvSpec]:
    """ResNet-50 (224 input): conv1 + 16 bottleneck blocks (53 convs).

    Downsampling follows the v1.5 convention (the variant vendor libraries
    benchmark): the first block of stages 3-5 applies stride 2 on its 3x3
    conv and on the projection shortcut.
    """
    layers = [_conv(batch, 3, 224, 64, 7, stride=2, name="resnet50.conv1")]
    # (input hw at stage exit, bottleneck width, output channels, blocks)
    stages = [(56, 64, 256, 3), (28, 128, 512, 4), (14, 256, 1024, 6), (7, 512, 2048, 3)]
    in_ch = 64
    for si, (hw, width, out_ch, blocks) in enumerate(stages):
        for b in range(blocks):
            downsample = si > 0 and b == 0
            entry_hw = hw * 2 if downsample else hw
            stride = 2 if downsample else 1
            tag = f"resnet50.s{si + 2}b{b + 1}"
            layers.append(_conv(batch, in_ch, entry_hw, width, 1, pad=0,
                                name=f"{tag}.conv1"))
            layers.append(_conv(batch, width, entry_hw, width, 3, stride=stride,
                                name=f"{tag}.conv2"))
            layers.append(_conv(batch, width, hw, out_ch, 1, pad=0, name=f"{tag}.conv3"))
            if b == 0:
                layers.append(_conv(batch, in_ch, entry_hw, out_ch, 1, stride=stride, pad=0,
                                    name=f"{tag}.proj"))
            in_ch = out_ch
    return layers


def googlenet(batch: int = 1) -> List[ConvSpec]:
    """GoogLeNet / Inception-v1 (224 input): stem + 9 inception modules.

    Each module contributes its 1x1, 3x3-reduce + 3x3, 5x5-reduce + 5x5
    convs (pool-projection 1x1 included).
    """
    layers = [
        _conv(batch, 3, 224, 64, 7, stride=2, name="googlenet.conv1"),
        _conv(batch, 64, 56, 64, 1, pad=0, name="googlenet.conv2.reduce"),
        _conv(batch, 64, 56, 192, 3, name="googlenet.conv2"),
    ]
    # (hw, in, 1x1, 3x3red, 3x3, 5x5red, 5x5, poolproj)
    modules = [
        ("3a", 28, 192, 64, 96, 128, 16, 32, 32),
        ("3b", 28, 256, 128, 128, 192, 32, 96, 64),
        ("4a", 14, 480, 192, 96, 208, 16, 48, 64),
        ("4b", 14, 512, 160, 112, 224, 24, 64, 64),
        ("4c", 14, 512, 128, 128, 256, 24, 64, 64),
        ("4d", 14, 512, 112, 144, 288, 32, 64, 64),
        ("4e", 14, 528, 256, 160, 320, 32, 128, 128),
        ("5a", 7, 832, 256, 160, 320, 32, 128, 128),
        ("5b", 7, 832, 384, 192, 384, 48, 128, 128),
    ]
    for tag, hw, c_in, p1, p3r, p3, p5r, p5, pp in modules:
        prefix = f"googlenet.inc{tag}"
        layers.append(_conv(batch, c_in, hw, p1, 1, pad=0, name=f"{prefix}.1x1"))
        layers.append(_conv(batch, c_in, hw, p3r, 1, pad=0, name=f"{prefix}.3x3r"))
        layers.append(_conv(batch, p3r, hw, p3, 3, name=f"{prefix}.3x3"))
        layers.append(_conv(batch, c_in, hw, p5r, 1, pad=0, name=f"{prefix}.5x5r"))
        layers.append(_conv(batch, p5r, hw, p5, 5, name=f"{prefix}.5x5"))
        layers.append(_conv(batch, c_in, hw, pp, 1, pad=0, name=f"{prefix}.pool"))
    return layers


def densenet121(batch: int = 1) -> List[ConvSpec]:
    """DenseNet-121 (224 input): growth 32, bottleneck 4x, 0.5 compression."""
    growth = 32
    layers = [_conv(batch, 3, 224, 64, 7, stride=2, name="densenet121.conv1")]
    channels = 64
    blocks = [(6, 56), (12, 28), (24, 14), (16, 7)]
    for bi, (count, hw) in enumerate(blocks):
        for li in range(count):
            prefix = f"densenet121.b{bi + 1}l{li + 1}"
            layers.append(_conv(batch, channels, hw, 4 * growth, 1, pad=0,
                                name=f"{prefix}.bottleneck"))
            layers.append(_conv(batch, 4 * growth, hw, growth, 3, name=f"{prefix}.conv"))
            channels += growth
        if bi < len(blocks) - 1:
            out = channels // 2
            layers.append(_conv(batch, channels, hw, out, 1, pad=0,
                                name=f"densenet121.trans{bi + 1}"))
            channels = out
    return layers


def yolov2(batch: int = 1) -> List[ConvSpec]:
    """YOLOv2 (Darknet-19 backbone + detection head) at 416x416."""
    plan = [
        (3, 416, 32, 3, "c1"),
        (32, 208, 64, 3, "c2"),
        (64, 104, 128, 3, "c3"), (128, 104, 64, 1, "c4"), (64, 104, 128, 3, "c5"),
        (128, 52, 256, 3, "c6"), (256, 52, 128, 1, "c7"), (128, 52, 256, 3, "c8"),
        (256, 26, 512, 3, "c9"), (512, 26, 256, 1, "c10"), (256, 26, 512, 3, "c11"),
        (512, 26, 256, 1, "c12"), (256, 26, 512, 3, "c13"),
        (512, 13, 1024, 3, "c14"), (1024, 13, 512, 1, "c15"), (512, 13, 1024, 3, "c16"),
        (1024, 13, 512, 1, "c17"), (512, 13, 1024, 3, "c18"),
        # detection head
        (1024, 13, 1024, 3, "c19"), (1024, 13, 1024, 3, "c20"),
        (512, 26, 64, 1, "passthrough"),
        (1280, 13, 1024, 3, "c21"),
        (1024, 13, 425, 1, "detect"),
    ]
    return [
        _conv(batch, c_in, hw, c_out, f, name=f"yolov2.{tag}")
        for c_in, hw, c_out, f, tag in plan
    ]


NETWORKS: Dict[str, Callable[[int], List[ConvSpec]]] = {
    "AlexNet": alexnet,
    "DenseNet": densenet121,
    "GoogleNet": googlenet,
    "ResNet": resnet50,
    "VGG16": vgg16,
    "YOLO": yolov2,
    "ZFNet": zfnet,
}


def network(name: str, batch: int = 1) -> List[ConvSpec]:
    """Look up a network's conv layers by (case-insensitive) name."""
    for key, builder in NETWORKS.items():
        if key.lower() == name.lower():
            return builder(batch)
    raise KeyError(f"unknown network {name!r}; known: {sorted(NETWORKS)}")


def network_names() -> List[str]:
    return list(NETWORKS)
