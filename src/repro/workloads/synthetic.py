"""Synthetic workloads: the microbenchmarks of the evaluation section.

- :func:`gemm_sweep` — the GEMM validation grid of Fig 13a
  (M, N, K swept 256..8192).
- :func:`conv_validation_layers` — CONV layers "that do not trigger the
  optimizations of Sec. IV-B" (C_I >= 128 so the multi-tile policy stays at
  1) for Fig 13b.
- :func:`fig4_layers` — the representative ResNet layers of Fig 4, labelled
  (W_I, C_I, C_O, W_F).
- :func:`fig14_layer` — the multi-tile study layer
  (N=8, C_I=8, W_I=C_O=128, W_F=3).
- :func:`small_channel_sweep` — C_I sweep for the policy validation of
  Fig 14b.
- :func:`strided_layers` / :func:`memory_bound_layers` — the Fig 18 layer
  selections drawn from the benchmark networks.
"""

from __future__ import annotations

from typing import List, Sequence

from ..core.conv_spec import ConvSpec, GemmShape
from .networks import NETWORKS

__all__ = [
    "gemm_sweep",
    "conv_validation_layers",
    "fig4_layers",
    "fig14_layer",
    "small_channel_sweep",
    "strided_layers",
    "memory_bound_layers",
]


def gemm_sweep(sizes: Sequence[int] = (256, 512, 1024, 2048, 4096, 8192)) -> List[GemmShape]:
    """The Fig 13a grid: square and non-square GEMMs over the size range.

    Sweeps each dimension through ``sizes`` while holding the others at a
    mid value, plus the square diagonal — 16 shapes covering both skinny and
    balanced regimes.
    """
    mid = sizes[len(sizes) // 2]
    shapes = [GemmShape(s, s, s) for s in sizes]
    for s in sizes:
        if s != mid:
            shapes.append(GemmShape(s, mid, mid))
            shapes.append(GemmShape(mid, s, mid))
    # Deduplicate while preserving order.
    seen = set()
    unique = []
    for shape in shapes:
        key = (shape.m, shape.n, shape.k)
        if key not in seen:
            seen.add(key)
            unique.append(shape)
    return unique


def conv_validation_layers(batch: int = 8) -> List[ConvSpec]:
    """Fig 13b: synthetic CONV layers with C_I >= 128 (multi-tile stays 1)."""
    plan = [
        (128, 56, 128, 3, 1), (128, 56, 256, 3, 2), (256, 28, 256, 3, 1),
        (256, 28, 512, 3, 2), (512, 14, 512, 3, 1), (512, 14, 512, 1, 1),
        (256, 56, 256, 1, 1), (128, 112, 128, 3, 1), (384, 14, 384, 3, 1),
        (1024, 13, 1024, 3, 1), (256, 14, 1024, 1, 1), (512, 7, 2048, 1, 1),
    ]
    return [
        ConvSpec(
            n=batch, c_in=c_in, h_in=hw, w_in=hw, c_out=c_out,
            h_filter=f, w_filter=f, stride=s, padding=f // 2,
            name=f"val.{hw}-{c_in}-{c_out}-{f}-s{s}",
        )
        for c_in, hw, c_out, f, s in plan
    ]


def fig4_layers(batch: int = 64) -> List[ConvSpec]:
    """Fig 4's representative ResNet layers, labelled (W_I, C_I, C_O, W_F)."""
    plan = [(56, 64, 64, 3), (56, 128, 128, 3), (28, 128, 128, 3), (28, 256, 256, 3)]
    return [
        ConvSpec(
            n=batch, c_in=c_in, h_in=w_i, w_in=w_i, c_out=c_out,
            h_filter=w_f, w_filter=w_f, stride=1, padding=w_f // 2,
            name=f"{w_i}-{c_in}-{c_out}-{w_f}",
        )
        for w_i, c_in, c_out, w_f in plan
    ]


def fig14_layer(batch: int = 8) -> ConvSpec:
    """The Fig 14a study layer: N=8, C_I=8, W_I=C_O=128, W_F=3."""
    return ConvSpec(
        n=batch, c_in=8, h_in=128, w_in=128, c_out=128,
        h_filter=3, w_filter=3, stride=1, padding=1, name="fig14.ci8",
    )


def small_channel_sweep(batch: int = 8) -> List[ConvSpec]:
    """Fig 14b: vary the input channel size (and filter) below the array
    height so the multi-tile policy engages at different strengths."""
    layers = []
    for c_in in (2, 4, 8, 16, 32, 64):
        for w_f in (3, 5, 7):
            layers.append(
                ConvSpec(
                    n=batch, c_in=c_in, h_in=64, w_in=64, c_out=128,
                    h_filter=w_f, w_filter=w_f, stride=1, padding=w_f // 2,
                    name=f"sweep.c{c_in}f{w_f}",
                )
            )
    return layers


def strided_layers(batch: int = 8) -> List[ConvSpec]:
    """Fig 18a: the stride>1 conv layers of the benchmark networks (spatial
    filters; 1x1 projections excluded as cuDNN routes those to a dedicated
    strided-GEMM kernel rather than the implicit conv path)."""
    picked = []
    for name, builder in NETWORKS.items():
        for layer in builder(batch):
            if layer.stride > 1 and not layer.is_pointwise():
                picked.append(layer)
    return picked


def memory_bound_layers(batch: int = 8) -> List[ConvSpec]:
    """Fig 18b: layers whose global-memory access "is not completely
    overlapped by the computation in the pipeline" (Sec. VII-B) — i.e.
    layers sitting just past the roofline ridge, where the no-reuse staging
    traffic exceeds the compute time by ~1.2-1.45x.  Selected from the
    benchmark networks with that criterion (deeply memory-bound layers are
    excluded, as in the paper: there reuse flips the balance entirely and
    the improvement would measure the roofline gap, not the optimisation).
    """
    plan = [
        ("alexnet.conv4", 384, 13, 384, 3, 1),
        ("alexnet.conv5", 384, 13, 256, 3, 1),
        ("googlenet.inc4e.5x5", 32, 14, 128, 5, 1),
        ("googlenet.inc5a.3x3", 160, 7, 320, 3, 1),
        ("googlenet.inc5b.3x3", 192, 7, 384, 3, 1),
        ("resnet50.s5b1.conv2", 512, 14, 512, 3, 2),
        ("resnet50.s5b2.conv2", 512, 7, 512, 3, 1),
    ]
    return [
        ConvSpec(
            n=batch, c_in=c_in, h_in=hw, w_in=hw, c_out=c_out,
            h_filter=f, w_filter=f, stride=s, padding=f // 2, name=name,
        )
        for name, c_in, hw, c_out, f, s in plan
    ]
