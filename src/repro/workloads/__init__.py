"""Workloads: conv-layer tables for the seven benchmark CNNs plus the
synthetic microbenchmarks used by the validation and ablation figures."""

from .networks import (
    NETWORKS,
    alexnet,
    densenet121,
    googlenet,
    network,
    network_names,
    resnet50,
    vgg16,
    yolov2,
    zfnet,
)
from .mobilenet import mobilenet_v1, mobilenet_v1_pointwise_only
from .synthetic import (
    conv_validation_layers,
    fig4_layers,
    fig14_layer,
    gemm_sweep,
    memory_bound_layers,
    small_channel_sweep,
    strided_layers,
)

__all__ = [
    "NETWORKS",
    "alexnet",
    "densenet121",
    "googlenet",
    "network",
    "network_names",
    "resnet50",
    "vgg16",
    "yolov2",
    "zfnet",
    "conv_validation_layers",
    "fig4_layers",
    "fig14_layer",
    "gemm_sweep",
    "memory_bound_layers",
    "small_channel_sweep",
    "strided_layers",
    "mobilenet_v1",
    "mobilenet_v1_pointwise_only",
]
