"""Functional execution of the block-level GPU kernels (Sec. V, Fig 12).

The timing models in this package assert things about kernels they never
run; this module runs them.  :class:`BlockedChannelFirstKernel` executes a
convolution exactly the way the paper's CUDA kernel is organised:

- the output matrix is partitioned into ``tile_m x tile_n`` thread-block
  tiles — each TB owns its tile exclusively, so the no-atomics claim is a
  checkable invariant (every output element written exactly once);
- within a TB, the K-march visits decomposed filters (in the reuse order if
  requested), stages each decomposed tile slice into a modelled shared
  memory, and accumulates ``C_tile += A_stage @ B_slice``;
- the shared-memory model tracks which taps are resident, so consecutive
  decomposed filters only fetch their working-set *difference* from global
  memory — the measured reuse must match the analytic
  :func:`~repro.core.reordering.order_reuse_fraction` (a test pins this),
  closing the loop between the traffic model and an executable kernel.

:class:`BlockedChannelLastKernel` does the same for the baseline: the TB
stages the sliding-window IFMap region and gathers lowered columns from it
(the crossbar's job).  Its staged volume is what the stride study prices.

Statistics reported per run: global-memory elements fetched, shared-memory
high-water occupancy, and output write counts.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.channel_first import decompose
from ..core.conv_spec import ConvSpec
from ..core.lowering import ColumnOrder, flatten_filters
from ..core.reference import direct_conv2d, pad_ifmap
from ..core.reordering import greedy_reuse_order

__all__ = ["KernelStats", "BlockedChannelFirstKernel", "BlockedChannelLastKernel"]


@dataclasses.dataclass
class KernelStats:
    """Counters accumulated over one kernel execution."""

    thread_blocks: int = 0
    global_elements_loaded: int = 0
    shared_high_water_elements: int = 0
    output_writes: int = 0
    duplicate_output_writes: int = 0

    def assert_no_atomics_needed(self) -> None:
        if self.duplicate_output_writes:
            raise AssertionError(
                f"{self.duplicate_output_writes} output elements written more than "
                "once — the blocking failed to avoid atomics"
            )


def _row_coords(spec: ConvSpec, row: int) -> Tuple[int, int, int]:
    """Lowered row index -> (n, oy, ox)."""
    per_image = spec.h_out * spec.w_out
    n, rest = divmod(row, per_image)
    oy, ox = divmod(rest, spec.w_out)
    return n, oy, ox


class BlockedChannelFirstKernel:
    """The paper's GPU kernel, functionally (Fig 12 + inter-tile reuse)."""

    def __init__(self, tile_m: int = 64, tile_n: int = 64, reorder: bool = True):
        if tile_m <= 0 or tile_n <= 0:
            raise ValueError("tile dims must be positive")
        self.tile_m = tile_m
        self.tile_n = tile_n
        self.reorder = reorder
        self.stats = KernelStats()

    def run(
        self, ifmap: np.ndarray, weights: np.ndarray, spec: ConvSpec, verify: bool = True
    ) -> np.ndarray:
        if ifmap.shape != spec.ifmap_shape:
            raise ValueError(f"ifmap shape {ifmap.shape} != {spec.ifmap_shape}")
        if weights.shape != spec.filter_shape:
            raise ValueError(f"weights shape {weights.shape} != {spec.filter_shape}")
        padded = pad_ifmap(ifmap, spec.padding).astype(np.float64)
        flat_b = flatten_filters(weights, spec, ColumnOrder.CHANNEL_FIRST).astype(np.float64)
        order = greedy_reuse_order(spec) if self.reorder else decompose(spec)

        m_total = spec.lowered_rows()
        output = np.zeros((m_total, spec.c_out))
        write_counts = np.zeros((m_total, spec.c_out), dtype=np.int64)

        for m0 in range(0, m_total, self.tile_m):
            rows = range(m0, min(m0 + self.tile_m, m_total))
            for n0 in range(0, spec.c_out, self.tile_n):
                cols = slice(n0, min(n0 + self.tile_n, spec.c_out))
                self._run_thread_block(spec, padded, flat_b, rows, cols, output, write_counts)

        self.stats.output_writes = int(write_counts.sum())
        self.stats.duplicate_output_writes = int((write_counts > 1).sum())
        if verify:
            reference = direct_conv2d(ifmap, weights, spec)
            produced = np.ascontiguousarray(
                output.reshape(spec.n, spec.h_out, spec.w_out, spec.c_out).transpose(0, 3, 1, 2)
            )
            if not np.allclose(produced, reference):
                raise AssertionError("blocked channel-first kernel diverged")
        return np.ascontiguousarray(
            output.reshape(spec.n, spec.h_out, spec.w_out, spec.c_out).transpose(0, 3, 1, 2)
        )

    # ------------------------------------------------------------ one block
    def _run_thread_block(self, spec, padded, flat_b, rows, cols, output, write_counts):
        """One TB: K-march over decomposed filters with a resident-tap cache."""
        self.stats.thread_blocks += 1
        order = greedy_reuse_order(spec) if self.reorder else decompose(spec)
        # Shared memory: resident taps keyed by padded coordinate; the value
        # is the channel vector.  This is the reuse the reordering exploits.
        shared: Dict[Tuple[int, int, int], np.ndarray] = {}
        accumulator = np.zeros((len(rows), cols.stop - cols.start))
        for tile in order:
            a_stage = np.empty((len(rows), spec.c_in))
            fresh: Dict[Tuple[int, int, int], np.ndarray] = {}
            for i, row in enumerate(rows):
                n, oy, ox = _row_coords(spec, row)
                y = oy * spec.stride + tile.r * spec.dilation
                x = ox * spec.stride + tile.s * spec.dilation
                key = (n, y, x)
                if key in shared:
                    a_stage[i] = shared[key]
                else:
                    vector = padded[n, :, y, x]
                    self.stats.global_elements_loaded += spec.c_in
                    fresh[key] = vector
                    a_stage[i] = vector
            # The previous tile's residents are evicted; this tile's set
            # (old hits + fresh fetches) becomes the new resident set —
            # double-buffered shared memory holding one working set.
            survivors = {}
            for i, row in enumerate(rows):
                n, oy, ox = _row_coords(spec, row)
                y = oy * spec.stride + tile.r * spec.dilation
                x = ox * spec.stride + tile.s * spec.dilation
                survivors[(n, y, x)] = a_stage[i]
            shared = survivors
            self.stats.shared_high_water_elements = max(
                self.stats.shared_high_water_elements, len(shared) * spec.c_in
            )
            b_rows = slice(tile.index * spec.c_in, (tile.index + 1) * spec.c_in)
            accumulator += a_stage @ flat_b[b_rows, cols]
        for i, row in enumerate(rows):
            output[row, cols] = accumulator[i]
            write_counts[row, cols] += 1


class BlockedChannelLastKernel:
    """The baseline: window-region staging + crossbar gathers, functionally."""

    def __init__(self, tile_m: int = 64, tile_n: int = 64):
        if tile_m <= 0 or tile_n <= 0:
            raise ValueError("tile dims must be positive")
        self.tile_m = tile_m
        self.tile_n = tile_n
        self.stats = KernelStats()

    def run(
        self, ifmap: np.ndarray, weights: np.ndarray, spec: ConvSpec, verify: bool = True
    ) -> np.ndarray:
        if ifmap.shape != spec.ifmap_shape:
            raise ValueError(f"ifmap shape {ifmap.shape} != {spec.ifmap_shape}")
        padded = pad_ifmap(ifmap, spec.padding).astype(np.float64)
        flat_b = flatten_filters(weights, spec, ColumnOrder.CHANNEL_LAST).astype(np.float64)
        m_total = spec.lowered_rows()
        output = np.zeros((m_total, spec.c_out))
        write_counts = np.zeros((m_total, spec.c_out), dtype=np.int64)

        for m0 in range(0, m_total, self.tile_m):
            rows = list(range(m0, min(m0 + self.tile_m, m_total)))
            region = self._stage_region(spec, padded, rows)
            for n0 in range(0, spec.c_out, self.tile_n):
                cols = slice(n0, min(n0 + self.tile_n, spec.c_out))
                self.stats.thread_blocks += 1
                a_stage = self._crossbar_gather(spec, region, rows)
                block = a_stage @ flat_b[:, cols]
                for i, row in enumerate(rows):
                    output[row, cols] = block[i]
                    write_counts[row, cols] += 1
        self.stats.output_writes = int(write_counts.sum())
        self.stats.duplicate_output_writes = int((write_counts > 1).sum())
        if verify:
            reference = direct_conv2d(ifmap, weights, spec)
            produced = np.ascontiguousarray(
                output.reshape(spec.n, spec.h_out, spec.w_out, spec.c_out).transpose(0, 3, 1, 2)
            )
            if not np.allclose(produced, reference):
                raise AssertionError("blocked channel-last kernel diverged")
        return np.ascontiguousarray(
            output.reshape(spec.n, spec.h_out, spec.w_out, spec.c_out).transpose(0, 3, 1, 2)
        )

    def _stage_region(self, spec, padded, rows):
        """Stage the full input rows covering these outputs' windows —
        the channel-last design's input-geometry-bound footprint."""
        needed_rows: Dict[int, set] = {}
        for row in rows:
            n, oy, ox = _row_coords(spec, row)
            for r in range(spec.h_filter):
                needed_rows.setdefault(n, set()).add(oy * spec.stride + r * spec.dilation)
        region = {}
        width = padded.shape[3]
        for n, y_values in needed_rows.items():
            for y in y_values:
                region[(n, y)] = padded[n, :, y, :]
                self.stats.global_elements_loaded += spec.c_in * width
        self.stats.shared_high_water_elements = max(
            self.stats.shared_high_water_elements,
            len(region) * spec.c_in * width,
        )
        return region

    def _crossbar_gather(self, spec, region, rows):
        """Form the channel-last lowered rows from the staged region."""
        k_total = spec.c_in * spec.positions
        a_stage = np.empty((len(rows), k_total))
        for i, row in enumerate(rows):
            n, oy, ox = _row_coords(spec, row)
            for c in range(spec.c_in):
                for r in range(spec.h_filter):
                    for s in range(spec.w_filter):
                        y = oy * spec.stride + r * spec.dilation
                        x = ox * spec.stride + s * spec.dilation
                        k = (c * spec.h_filter + r) * spec.w_filter + s
                        a_stage[i, k] = region[(n, y)][c, x]
        return a_stage
