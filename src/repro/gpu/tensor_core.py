"""Tensor-core compute timing.

The TC-side of every GPU kernel model: given a GEMM's logical dimensions and
the thread-block tiling, how long does the compute take once operands are on
chip?  Two effects matter at this modelling altitude:

- **Tile quantisation**: the array of thread blocks covers
  ``ceil(M/tile_m) * ceil(N/tile_n)`` tiles and each marches over
  ``ceil(K/tile_k)`` chunks, so the *executed* MAC volume is the padded one.
- **Wave quantisation**: tiles run in waves of
  ``num_sms * max_tbs_per_sm``; a trailing partial wave still takes a full
  tile-time (classic GPU tail effect).
"""

from __future__ import annotations

import dataclasses
import math

from ..errors import AuditFault
from .config import GPUConfig

__all__ = ["ComputeTime", "tc_gemm_compute_seconds", "padded_macs", "wave_count"]


@dataclasses.dataclass(frozen=True)
class ComputeTime:
    """Compute-side timing of one GEMM-shaped kernel."""

    seconds: float
    executed_macs: int
    waves: int
    tiles: int


def padded_macs(m: int, k: int, n: int, config: GPUConfig) -> int:
    """MAC volume after padding every dimension up to the tile grid."""
    t = config.tile
    pm = math.ceil(m / t.tile_m) * t.tile_m
    pn = math.ceil(n / t.tile_n) * t.tile_n
    pk = math.ceil(k / t.tile_k) * t.tile_k
    return pm * pn * pk


def wave_count(m: int, n: int, config: GPUConfig) -> int:
    """Number of full thread-block waves needed to cover the output."""
    t = config.tile
    tiles = math.ceil(m / t.tile_m) * math.ceil(n / t.tile_n)
    concurrent = config.num_sms * config.max_tbs_per_sm
    return max(1, math.ceil(tiles / concurrent))


def _tile_time(m: int, k: int, n: int, tile_m: int, tile_n: int, tile_k: int, config: GPUConfig):
    """(seconds, executed, tiles) for one candidate tiling.

    Time is the larger of machine throughput on the padded volume and the
    serial bound of one tile's K-march on one SM.  Smaller tiles reuse
    operands less within the SM, costing a mild per-halving derate.
    """
    tiles = math.ceil(m / tile_m) * math.ceil(n / tile_n)
    tile_macs = tile_m * tile_n * (math.ceil(k / tile_k) * tile_k)
    executed = tiles * tile_macs
    halvings = math.log2((128 * 128) / (tile_m * tile_n)) if tile_m * tile_n < 128 * 128 else 0
    rate = config.sustained_macs_per_s * (0.85 ** halvings)
    per_sm_rate = rate / config.num_sms
    seconds = max(executed / rate, tile_macs / per_sm_rate)
    return seconds, executed, tiles


#: Candidate output tilings a tuned library would pick between.
_TILE_CANDIDATES = ((128, 128), (128, 64), (64, 64), (64, 32), (32, 32))


def tc_gemm_compute_seconds(m: int, k: int, n: int, config: GPUConfig) -> ComputeTime:
    """Seconds the TCs spend on an ``MxKxN`` GEMM (operands on chip).

    Executed volume is tile-padded and delivered at the sustained MAC rate,
    bounded below by one tile's serial K-march on one SM.  Like a tuned
    library, the model picks the best tile shape from a small candidate set
    (big tiles for big GEMMs; smaller tiles when the default grid would
    leave most SMs idle), with an efficiency derate per tile halving (small-tile kernels
    lose operand reuse and issue efficiency).
    Wave statistics are reported for the configured default tile; integral
    wave quantisation is deliberately smoothed (tile rasterisation and
    multi-kernel overlap soften it on real V100s).
    """
    if m <= 0 or k <= 0 or n <= 0:
        raise ValueError("GEMM dims must be positive")
    t = config.tile
    candidates = [(t.tile_m, t.tile_n)] + [c for c in _TILE_CANDIDATES if c != (t.tile_m, t.tile_n)]
    best = min(
        (_tile_time(m, k, n, tm, tn, t.tile_k, config) for tm, tn in candidates),
        key=lambda r: r[0],
    )
    seconds, executed, tiles = best
    # The executed-MAC count is integral by construction (tiles x padded tile
    # volume); cast exactly once at this boundary so any float drift in a
    # future refactor fails loudly instead of rounding silently.
    executed_int = int(executed)
    if executed_int != executed:
        raise AuditFault(
            f"non-integral executed-MAC total for {m}x{k}x{n} GEMM",
            invariant="gpu.macs.integral",
            expected="an exact integer",
            actual=executed,
        )
    if not math.isfinite(seconds) or seconds <= 0:
        raise AuditFault(
            f"non-finite or non-positive compute time for {m}x{k}x{n} GEMM",
            invariant="gpu.seconds.finite",
            expected="a finite, positive float",
            actual=seconds,
        )
    waves = wave_count(m, n, config)
    return ComputeTime(seconds=seconds, executed_macs=executed_int, waves=waves, tiles=tiles)
