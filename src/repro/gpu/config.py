"""GPU (V100-like) configuration for the tensor-core substrate (Sec. V/VI).

The GPU experiments run FP16 on Volta-class tensor cores; this config
captures the handful of machine parameters the timing models consume.
Defaults are the public V100 SXM2 numbers: 80 SMs x 8 TCs at 1.53 GHz
(512 FP16 MACs/SM/cycle -> 125.4 TFLOPS peak), 96 KB shared memory per SM,
900 GB/s HBM2.
"""

from __future__ import annotations

import dataclasses

from ..errors import ConfigError

__all__ = ["GPUConfig", "V100", "TileConfig"]


@dataclasses.dataclass(frozen=True)
class TileConfig:
    """Thread-block tiling of the output matrix in the blocked GEMM.

    Defaults mirror the cudaTensorCoreGemm-style kernel the paper builds on:
    a 128x128 output tile per thread block, marching over K in 32-wide
    chunks staged through shared memory.
    """

    tile_m: int = 128
    tile_n: int = 128
    tile_k: int = 32

    def __post_init__(self) -> None:
        for field in ("tile_m", "tile_n", "tile_k"):
            value = getattr(self, field)
            if value <= 0:
                raise ConfigError(
                    "tile dims must be positive", field=field, value=value
                )


@dataclasses.dataclass(frozen=True)
class GPUConfig:
    """Machine parameters of the simulated GPU."""

    num_sms: int = 80
    tensor_cores_per_sm: int = 8
    clock_ghz: float = 1.53
    # FP16 MACs per SM per cycle delivered by the TCs (8 TCs x 64 FMA).
    macs_per_sm_per_cycle: int = 512
    shared_mem_bytes_per_sm: int = 96 * 1024
    hbm_bandwidth_gbps: float = 900.0
    elem_bytes: int = 2  # FP16
    # Achievable fractions of peak, calibrated against public V100 behaviour:
    # large FP16 TC GEMMs sustain ~75-85% of peak; streaming kernels ~80-85%
    # of peak DRAM bandwidth.
    compute_efficiency: float = 0.80
    bandwidth_efficiency: float = 0.82
    # Shared-memory *staging* (the sliding-window / decomposed-tile gathers
    # behind the implicit im2col paths) achieves a lower fraction of peak
    # DRAM bandwidth than a pure stream: short strided gathers, address
    # generation and TB-level synchronisation.  This is the latency the
    # paper's Fig 3 pictures as "SRAM filling time".
    staging_efficiency: float = 0.45
    # The channel-first path's staging reads whole C_I x N channel vectors
    # (dense, coalesced); the channel-last sliding-window gather cannot, so
    # channel-first staging lands this factor closer to streaming speed.
    channel_first_staging_bonus: float = 1.0
    # L2 capacity: an operand smaller than this is fetched from DRAM once
    # regardless of how many thread blocks re-read it.
    l2_bytes: int = 6 * 1024 * 1024
    # Fixed kernel-launch + tail latency per kernel, seconds.
    kernel_overhead_s: float = 4.0e-6
    tile: TileConfig = dataclasses.field(default_factory=TileConfig)
    # Thread blocks an SM can keep resident (occupancy), bounding the wave
    # size; with two 128x128 FP16 double-buffered tiles per SM shared memory
    # is the limiter on V100.
    max_tbs_per_sm: int = 2

    def __post_init__(self) -> None:
        for field in ("num_sms", "tensor_cores_per_sm"):
            value = getattr(self, field)
            if value <= 0:
                raise ConfigError(
                    "SM/TC counts must be positive", field=field, value=value
                )
        if self.clock_ghz <= 0:
            raise ConfigError(
                "clock must be positive", field="clock_ghz", value=self.clock_ghz
            )
        if self.macs_per_sm_per_cycle <= 0:
            raise ConfigError(
                "MAC rate must be positive",
                field="macs_per_sm_per_cycle", value=self.macs_per_sm_per_cycle,
            )
        for field in (
            "compute_efficiency", "bandwidth_efficiency", "staging_efficiency"
        ):
            value = getattr(self, field)
            if not 0 < value <= 1:
                raise ConfigError(
                    "efficiencies must be in (0, 1]", field=field, value=value
                )
        if self.l2_bytes < 0:
            raise ConfigError(
                "l2_bytes must be non-negative", field="l2_bytes", value=self.l2_bytes
            )
        if self.hbm_bandwidth_gbps <= 0:
            raise ConfigError(
                "bandwidth must be positive",
                field="hbm_bandwidth_gbps", value=self.hbm_bandwidth_gbps,
            )

    @property
    def peak_macs_per_s(self) -> float:
        return self.num_sms * self.macs_per_sm_per_cycle * self.clock_ghz * 1e9

    @property
    def peak_tflops(self) -> float:
        return 2 * self.peak_macs_per_s / 1e12

    @property
    def sustained_macs_per_s(self) -> float:
        return self.peak_macs_per_s * self.compute_efficiency

    @property
    def sustained_bandwidth_bps(self) -> float:
        return self.hbm_bandwidth_gbps * 1e9 * self.bandwidth_efficiency

    @property
    def staging_bandwidth_bps(self) -> float:
        """Effective DRAM bandwidth of the implicit paths' staging gathers."""
        return self.hbm_bandwidth_gbps * 1e9 * self.staging_efficiency

    def describe(self) -> str:
        return (
            f"GPU[{self.num_sms} SMs x {self.tensor_cores_per_sm} TCs @ "
            f"{self.clock_ghz} GHz, {self.peak_tflops:.0f} TFLOPS FP16 peak, "
            f"{self.hbm_bandwidth_gbps:.0f} GB/s HBM]"
        )


#: The canonical V100 configuration used by the evaluation.
V100 = GPUConfig()
