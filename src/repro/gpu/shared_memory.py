"""Shared-memory staging models for the three GPU convolution paths.

Every GPU kernel here is a blocked GEMM whose A-operand tile is staged into
shared memory; the paths differ *only* in what that staging costs:

- **Plain GEMM** (:func:`gemm_a_traffic_bytes`): the A panel exists in DRAM;
  each output-tile column re-reads it.
- **Explicit im2col**: same as plain GEMM (A is the materialised lowered
  matrix) — the staging cost of the transform kernel lives in
  :mod:`repro.gpu.explicit`.
- **Channel-last implicit** (:func:`channel_last_fill_bytes`): the TB fills
  shared memory with the *IFMap region* covering its output rows' sliding
  windows, then the crossbar gathers lowered columns from it.  The region's
  size is set by the **input** geometry, so it does not shrink when stride
  grows — the root cause of Fig 4a's degradation (Sec. II-C, Fig 3).
- **Channel-first implicit** (:func:`channel_first_fill_bytes`): the TB
  fills exactly the decomposed tile's taps — ``tile_m x C_I`` elements per
  decomposed filter chunk — which shrinks with stride together with the
  compute, and shrinks further under inter-tile reuse (Sec. V).
"""

from __future__ import annotations

import math

from ..core.conv_spec import ConvSpec
from .config import GPUConfig

__all__ = [
    "gemm_a_traffic_bytes",
    "gemm_b_traffic_bytes",
    "gemm_c_traffic_bytes",
    "channel_last_fill_bytes",
    "channel_first_fill_bytes",
    "shared_tile_fits",
]


def _l2_capped_traffic(operand_bytes: int, reloads: int, config: GPUConfig) -> int:
    """DRAM traffic for an operand logically read ``reloads`` times.

    An operand that fits in L2 hits DRAM once; otherwise every pass misses.
    This is the standard two-level reuse picture and what makes small B
    matrices effectively free while huge lowered-A panels stream repeatedly.
    """
    if operand_bytes <= config.l2_bytes:
        return operand_bytes
    return operand_bytes * reloads


def gemm_a_traffic_bytes(m: int, k: int, n: int, config: GPUConfig) -> int:
    """DRAM bytes read for A across the kernel: the panel is logically read
    once per output-tile column, L2-capped."""
    reloads = math.ceil(n / config.tile.tile_n)
    return _l2_capped_traffic(m * k * config.elem_bytes, reloads, config)


def gemm_b_traffic_bytes(m: int, k: int, n: int, config: GPUConfig) -> int:
    """DRAM bytes read for B: logically read once per output-tile row,
    L2-capped (conv weight matrices almost always fit L2 and stream once)."""
    reloads = math.ceil(m / config.tile.tile_m)
    return _l2_capped_traffic(k * n * config.elem_bytes, reloads, config)


def gemm_c_traffic_bytes(m: int, n: int, config: GPUConfig) -> int:
    """DRAM bytes written for C (written exactly once)."""
    return m * n * config.elem_bytes


def channel_last_fill_bytes(spec: ConvSpec, config: GPUConfig) -> int:
    """Total DRAM bytes staged into shared memory by the channel-last path.

    A thread block owning ``tile_m`` output pixels stages the IFMap rows
    covering those pixels' receptive fields.  ``tile_m`` consecutive output
    pixels span about ``tile_m / W_O`` output rows, i.e.
    ``tile_m / W_O * stride + (H_F - stride)`` input rows of the *full input
    width* — input-geometry-sized, hence stride-insensitive per tile.  Each
    TB stages its region once per K-chunk group it marches (the region is
    held while the TB sweeps all H_F*W_F*C_I K-steps), and the whole grid of
    TBs covers M output pixels and reloads per output-tile column like plain
    GEMM.
    """
    t = config.tile
    m_total = spec.lowered_rows()
    # Fractional output rows per tile (a 128-pixel tile spanning 1.14 rows
    # stages 1.14 rows' worth of fresh data plus the filter halo).
    out_rows_per_tile = t.tile_m / spec.w_out
    in_rows_per_tile = min(
        float(spec.h_in + 2 * spec.padding),
        out_rows_per_tile * spec.stride + spec.dilation * (spec.h_filter - 1) + 1 - spec.stride,
    )
    width = spec.w_in + 2 * spec.padding
    tile_bytes = in_rows_per_tile * width * spec.c_in * config.elem_bytes
    tiles_m = m_total / t.tile_m
    reloads = math.ceil(spec.c_out / t.tile_n)
    return int(tile_bytes * tiles_m * reloads)


def channel_first_fill_bytes(
    spec: ConvSpec, config: GPUConfig, reuse_fraction: float = 0.0
) -> int:
    """Total DRAM bytes staged by the block-level channel-first path.

    Per TB and per decomposed filter, the staging is exactly the decomposed
    tile slice: ``tile_m * C_I`` elements — proportional to *output* work,
    hence stride-insensitive in the ratio against compute.  With inter-tile
    reuse reordering, consecutive decomposed filters share a
    ``reuse_fraction`` of their working set, scaling traffic by
    ``(1 - reuse)`` on all but the first tile of each sweep.
    """
    if not (0.0 <= reuse_fraction < 1.0):
        raise ValueError(f"reuse_fraction must be in [0, 1), got {reuse_fraction}")
    t = config.tile
    m_total = spec.lowered_rows()
    positions = spec.positions
    per_position = m_total * spec.c_in * config.elem_bytes
    reloads = math.ceil(spec.c_out / t.tile_n)
    if positions == 1:
        effective_positions = 1.0
    else:
        # First position pays full fill; the rest pay (1 - reuse).
        effective_positions = 1.0 + (positions - 1) * (1.0 - reuse_fraction)
    return int(per_position * effective_positions * reloads)


def shared_tile_fits(spec: ConvSpec, config: GPUConfig) -> bool:
    """Whether one TB's double-buffered A+B staging fits shared memory.

    Used as a sanity guard by the conv paths: A-stage ``tile_m x tile_k``
    plus B-stage ``tile_k x tile_n``, double buffered.
    """
    t = config.tile
    a_bytes = t.tile_m * t.tile_k * config.elem_bytes
    b_bytes = t.tile_k * t.tile_n * config.elem_bytes
    return 2 * (a_bytes + b_bytes) <= config.shared_mem_bytes_per_sm
