"""Convolution variants on the GPU: dilated and deformable (Sec. II-C).

The paper's indictment of the channel-last design is that it "incurs
significant performance overhead for common convolution variants such as
strided and deformable convolution".  Strided is Fig 4/18a; this module
models the other two variants so the extension experiments can quantify the
same asymmetry:

- **Dilated** convolution widens the sliding-window footprint by the
  dilation factor (the channel-last staging region grows) while the
  channel-first decomposed tiles are untouched — their taps are simply
  further apart.
- **Deformable** convolution's data-dependent fractional taps defeat any
  offline bank-conflict-free layout entirely: the channel-last/crossbar
  kernel must fall back to an *explicit* gather that materialises the
  lowered matrix (4 bilinear reads per tap, then a plain GEMM), while the
  channel-first path fuses the same gather into its per-tile staging.
"""

from __future__ import annotations

import dataclasses

from ..core.conv_spec import ConvSpec
from ..core.deformable import gather_traffic_elements
from .blocked_gemm import KernelTime, gemm_kernel_time, kernel_time
from .channel_first import channel_first_conv_time
from .channel_last import channel_last_conv_time
from .config import GPUConfig
from .shared_memory import gemm_b_traffic_bytes, gemm_c_traffic_bytes

__all__ = [
    "dilated_conv_times",
    "deformable_conv_time_channel_first",
    "deformable_conv_time_fallback",
]


def dilated_conv_times(spec: ConvSpec, config: GPUConfig):
    """(channel_last, channel_first) kernel times for a dilated conv.

    Both paths already consume dilation through :class:`ConvSpec`; this
    helper exists so experiments compare them symmetrically.
    """
    if spec.dilation <= 1:
        raise ValueError("use the plain conv paths for dilation 1")
    return (
        channel_last_conv_time(spec, config),
        channel_first_conv_time(spec, config),
    )


def deformable_conv_time_channel_first(spec: ConvSpec, config: GPUConfig) -> KernelTime:
    """Our implicit path with the bilinear gather fused into staging.

    Staging per decomposed tile grows 4x (the bilinear corners); offsets
    (2 floats per tap position) stream once.  No lowered matrix is ever
    materialised.  Inter-tile reuse does not apply — the learned offsets
    decorrelate neighbouring tiles' working sets.
    """
    shape = spec.gemm_shape()
    elem = config.elem_bytes
    staged = gather_traffic_elements(spec) * elem
    offsets = spec.n * 2 * spec.positions * spec.h_out * spec.w_out * 4  # fp32 offsets
    streamed = (
        gemm_b_traffic_bytes(shape.m, shape.k, shape.n, config)
        + gemm_c_traffic_bytes(shape.m, shape.n, config)
        + offsets
    )
    return kernel_time(
        "deformable-channel-first",
        shape.m,
        shape.k,
        shape.n,
        streamed,
        config,
        macs=shape.macs,
        staged_bytes=staged,
    )


def deformable_conv_time_fallback(spec: ConvSpec, config: GPUConfig) -> KernelTime:
    """The channel-last ecosystem's route: explicit gather + GEMM.

    A gather kernel materialises the lowered matrix (read 4 bilinear corners
    per tap + offsets, write the lowered matrix), then a plain GEMM consumes
    it from DRAM.  Reported as one combined kernel time.
    """
    shape = spec.gemm_shape()
    elem = config.elem_bytes
    gather_read = gather_traffic_elements(spec) * elem
    offsets = spec.n * 2 * spec.positions * spec.h_out * spec.w_out * 4
    lowered = spec.lowered_bytes(elem)
    transform_seconds = (
        gather_read / config.staging_bandwidth_bps
        + (offsets + lowered) / config.sustained_bandwidth_bps
        + config.kernel_overhead_s
    )
    gemm = gemm_kernel_time(shape, config, name="deformable-explicit-gemm")
    combined_traffic = gather_read + offsets + lowered + gemm.traffic_bytes
    return KernelTime(
        name="deformable-explicit",
        seconds=transform_seconds + gemm.seconds,
        compute_seconds=gemm.compute_seconds,
        memory_seconds=transform_seconds - config.kernel_overhead_s + gemm.memory_seconds,
        traffic_bytes=combined_traffic,
        macs=shape.macs,
    )
