"""Implicit channel-last im2col on tensor cores (the Lym-et-al.-style path).

This is the design the paper argues today's GPUs resemble (Sec. II-C): the
thread block stages the IFMap region covering its outputs' sliding windows
into the multi-banked shared memory, and a crossbar gathers lowered-matrix
columns from it each cycle.

Timing consequences modelled here:

- The GEMM compute shrinks ~quadratically with stride (fewer output pixels),
  but the staged region — and hence the fill traffic — is set by the *input*
  geometry and barely shrinks (:func:`channel_last_fill_bytes`).  At
  stride 1 the fills hide under compute; at stride 2/4 the kernel tips
  memory-bound and TFLOPS collapses, reproducing Fig 4a.
- Per-element address generation through the crossbar costs a little
  throughput even at stride 1 (``addressing_overhead``), which is why the
  paper measures implicit conv at slightly below equivalent-GEMM TFLOPS
  (Fig 4a's GEMM series sits above the stride-1 bars).
"""

from __future__ import annotations

from ..core.conv_spec import ConvSpec
from ..perf.cache import memoized_model
from ..trace import metrics as trace_metrics
from ..trace import tracer as trace
from .blocked_gemm import KernelTime, kernel_time
from .config import GPUConfig
from .shared_memory import (
    channel_last_fill_bytes,
    gemm_b_traffic_bytes,
    gemm_c_traffic_bytes,
)

__all__ = ["channel_last_conv_time", "stride_conflict_factor"]

#: Fractional throughput cost of the per-element crossbar address generation.
ADDRESSING_OVERHEAD = 0.03

#: How fast the channel-last fill path degrades with stride.  The bank-
#: conflict-free SRAM layout of Lym et al. is constructed offline for unit
#: stride; a stride-s window read hits ``s``-strided banks, serialising part
#: of every crossbar transfer (Sec. II-C: the existing design "is inefficient
#: in executing common CONV variants such as strided and dilated CONV").
STRIDE_CONFLICT_PENALTY = 0.3


def stride_conflict_factor(stride: int, penalty: float = STRIDE_CONFLICT_PENALTY) -> float:
    """Effective slowdown of the channel-last staging path at a given stride."""
    if stride <= 0:
        raise ValueError(f"stride must be positive, got {stride}")
    if penalty < 0:
        raise ValueError(f"penalty must be non-negative, got {penalty}")
    return 1.0 + penalty * (stride - 1)


@memoized_model
def _channel_last_conv_time(
    spec: ConvSpec, config: GPUConfig, addressing_overhead: float = ADDRESSING_OVERHEAD
) -> KernelTime:
    if not (0.0 <= addressing_overhead < 1.0):
        raise ValueError(f"addressing_overhead must be in [0,1), got {addressing_overhead}")
    shape = spec.gemm_shape()
    staged = int(channel_last_fill_bytes(spec, config) * stride_conflict_factor(spec.stride))
    streamed = gemm_b_traffic_bytes(shape.m, shape.k, shape.n, config) + gemm_c_traffic_bytes(
        shape.m, shape.n, config
    )
    if spec.is_pointwise():
        # A 1x1 conv's "lowered matrix" is the IFMap itself (possibly
        # row/column-subsampled): channel-contiguous reads, no window gather.
        streamed += staged
        staged = 0
    base = kernel_time(
        "implicit-channel-last",
        shape.m,
        shape.k,
        shape.n,
        streamed,
        config,
        macs=shape.macs,
        staged_bytes=staged,
    )
    return base.scaled(1.0 + addressing_overhead, name=base.name)


def channel_last_conv_time(
    spec: ConvSpec, config: GPUConfig, addressing_overhead: float = ADDRESSING_OVERHEAD
) -> KernelTime:
    """Kernel time of the channel-last implicit conv for one layer."""
    with trace.span("gpu.channel_last.time", layer=spec.describe()):
        result = _channel_last_conv_time(
            spec, config, addressing_overhead=addressing_overhead
        )
    trace_metrics.record_kernel(
        "gpu.channel_last", spec.describe() or "conv", result.seconds, result.tflops
    )
    return result
