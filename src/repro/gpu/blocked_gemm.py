"""Blocked GEMM kernel timing: the engine under all three GPU conv paths.

A kernel's time is the classic overlap bound

    time = max(compute_seconds, memory_seconds) + kernel_overhead

with compute from :mod:`repro.gpu.tensor_core` (tile/wave quantisation) and
memory = DRAM traffic / sustained bandwidth.  The conv paths reuse
:func:`kernel_time` and differ only in the A-side traffic they report.
"""

from __future__ import annotations

import dataclasses

from ..audit import auditor as _audit
from ..core.conv_spec import GemmShape
from ..perf.cache import memoized_model
from .config import GPUConfig
from .shared_memory import (
    gemm_a_traffic_bytes,
    gemm_b_traffic_bytes,
    gemm_c_traffic_bytes,
)
from .tensor_core import tc_gemm_compute_seconds

__all__ = ["KernelTime", "kernel_time", "gemm_kernel_time"]


@dataclasses.dataclass(frozen=True)
class KernelTime:
    """Timing outcome of one GPU kernel."""

    name: str
    seconds: float
    compute_seconds: float
    memory_seconds: float
    traffic_bytes: int
    macs: int

    @property
    def bound(self) -> str:
        return "compute" if self.compute_seconds >= self.memory_seconds else "memory"

    @property
    def tflops(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return 2 * self.macs / self.seconds / 1e12

    def scaled(self, factor: float, name: str = None) -> "KernelTime":
        """A copy with total time scaled (vendor-efficiency adjustments)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return dataclasses.replace(
            self, seconds=self.seconds * factor, name=name or self.name
        )


def kernel_time(
    name: str,
    m: int,
    k: int,
    n: int,
    traffic_bytes: int,
    config: GPUConfig,
    macs: int = None,
    staged_bytes: int = 0,
) -> KernelTime:
    """Overlap-bound kernel timing for an ``MxKxN``-shaped kernel.

    ``traffic_bytes`` is streamed DRAM traffic priced at the sustained
    streaming bandwidth; ``staged_bytes`` is shared-memory staging traffic
    (the implicit paths' gathers) priced at the lower staging bandwidth.
    ``macs`` defaults to the logical ``m*k*n`` (pass the algorithmic count
    when padding differs).
    """
    if staged_bytes < 0 or traffic_bytes < 0:
        raise ValueError("traffic must be non-negative")
    compute = tc_gemm_compute_seconds(m, k, n, config)
    memory_seconds = (
        traffic_bytes / config.sustained_bandwidth_bps
        + staged_bytes / config.staging_bandwidth_bps
    )
    seconds = max(compute.seconds, memory_seconds) + config.kernel_overhead_s
    result = KernelTime(
        name=name,
        seconds=seconds,
        compute_seconds=compute.seconds,
        memory_seconds=memory_seconds,
        traffic_bytes=traffic_bytes + staged_bytes,
        macs=macs if macs is not None else m * k * n,
    )
    if _audit.enabled():
        from ..audit import invariants as audit_invariants

        audit_invariants.check_gpu_kernel(result, config)
    return result


@memoized_model
def gemm_kernel_time(shape: GemmShape, config: GPUConfig, name: str = "gemm") -> KernelTime:
    """A plain DRAM-resident GEMM — the "GEMM-only" reference of Fig 4a and
    the compute half of the explicit-im2col path."""
    traffic = (
        gemm_a_traffic_bytes(shape.m, shape.k, shape.n, config)
        + gemm_b_traffic_bytes(shape.m, shape.k, shape.n, config)
        + gemm_c_traffic_bytes(shape.m, shape.n, config)
    )
    return kernel_time(name, shape.m, shape.k, shape.n, traffic, config, macs=shape.macs)
