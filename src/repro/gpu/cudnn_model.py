"""The cuDNN measurement stand-in (see DESIGN.md, substitutions).

The paper benchmarks against
``CUDNN_CONVOLUTION_FWD_ALGO_IMPLICIT_PRECOMP_GEMM`` on a real V100.  With no
GPU available, this module plays that role: a channel-last implicit conv on
the same substrate as our implementation, adjusted by

- a small **vendor advantage** at stride 1 (cuDNN's microarchitecture-
  specific tuning the paper explicitly says is unavailable to it — Fig 17
  measures our kernel an average ~1% behind), and
- deterministic, seed-stable **measurement noise** (~1-2%), so baseline
  numbers behave like repeated hardware runs rather than model output.

Everything downstream treats :func:`cudnn_conv_time` as "the measurement".
"""

from __future__ import annotations

from ..core.conv_spec import ConvSpec
from ..perf.cache import memoized_model
from ..trace import metrics as trace_metrics
from ..trace import tracer as trace
from ..util import deterministic_noise
from .blocked_gemm import KernelTime
from .channel_last import _channel_last_conv_time
from .config import GPUConfig

__all__ = ["cudnn_conv_time", "VENDOR_SPEEDUP"]

#: Relative speed of cuDNN's hand-tuned kernels against our blocked-GEMM
#: substrate at equal traffic.  Fig 17's ~1% average gap emerges from this
#: together with our kernel's extra software addressing overhead.
VENDOR_SPEEDUP = 1.0


@memoized_model
def _cudnn_conv_time(
    spec: ConvSpec,
    config: GPUConfig,
    noise_amplitude: float = 0.015,
    seed: int = 2021,
) -> KernelTime:
    # The inner channel-last model is used directly: cuDNN's substrate is
    # the same kernel, and routing through the public wrapper would record a
    # spurious channel-last measurement for every cuDNN query.
    base = _channel_last_conv_time(spec, config, addressing_overhead=0.0)
    factor = VENDOR_SPEEDUP * (
        1.0 + deterministic_noise(f"cudnn:{spec.describe()}", noise_amplitude, seed)
    )
    return base.scaled(factor, name="cudnn-implicit-precomp-gemm")


def cudnn_conv_time(
    spec: ConvSpec,
    config: GPUConfig,
    noise_amplitude: float = 0.015,
    seed: int = 2021,
) -> KernelTime:
    """The "measured" cuDNN implicit conv time for one layer."""
    with trace.span("gpu.cudnn.time", layer=spec.describe()):
        result = _cudnn_conv_time(
            spec, config, noise_amplitude=noise_amplitude, seed=seed
        )
    trace_metrics.record_kernel(
        "gpu.cudnn", spec.describe() or "conv", result.seconds, result.tflops
    )
    return result
