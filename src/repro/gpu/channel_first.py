"""Block-level channel-first implicit im2col on tensor cores (Sec. V).

Our GPU implementation: the equivalent GEMM is blocked first (each thread
block owns an output tile, so no atomics are needed — Fig 12), and *within*
a block the K-march visits decomposed filters channel-first.  The A-operand
staging per decomposed filter is exactly the decomposed tile slice, which

- shrinks with stride together with the compute (stride-insensitive, the
  advantage over cuDNN in Fig 18a), and
- overlaps heavily between consecutive decomposed filters, so reordering
  them (:func:`repro.core.reordering.greedy_reuse_order`) cuts the fill
  traffic by the achieved reuse fraction (Fig 18b).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..audit import auditor as _audit
from ..core.conv_spec import ConvSpec
from ..core.reordering import greedy_reuse_order, order_reuse_fraction
from ..perf.cache import memoized_model
from ..trace import metrics as trace_metrics
from ..trace import tracer as trace
from .blocked_gemm import KernelTime, kernel_time
from .config import GPUConfig
from .shared_memory import (
    channel_first_fill_bytes,
    gemm_b_traffic_bytes,
    gemm_c_traffic_bytes,
)

__all__ = ["ChannelFirstGPUResult", "channel_first_conv_time"]

#: Our kernel's software address generation costs slightly more than the
#: hand-tuned vendor kernels at stride 1 (Fig 17 measures us ~1% behind).
ADDRESSING_OVERHEAD = 0.04


@dataclasses.dataclass(frozen=True)
class ChannelFirstGPUResult:
    """Kernel time plus the reuse statistics that produced it."""

    kernel: KernelTime
    reuse_fraction: float
    reordered: bool

    @property
    def seconds(self) -> float:
        return self.kernel.seconds

    @property
    def tflops(self) -> float:
        return self.kernel.tflops


@memoized_model
def _channel_first_conv_time(
    spec: ConvSpec,
    config: GPUConfig,
    reorder: bool = True,
    addressing_overhead: float = ADDRESSING_OVERHEAD,
) -> ChannelFirstGPUResult:
    if not (0.0 <= addressing_overhead < 1.0):
        raise ValueError(f"addressing_overhead must be in [0,1), got {addressing_overhead}")
    shape = spec.gemm_shape()
    if reorder:
        order = greedy_reuse_order(spec)
        reuse = order_reuse_fraction(spec, order)
    else:
        # Without the optimization the kernel refetches each decomposed
        # subtile from global memory — "no data reuse" in the paper's naive
        # order (Sec. V, Fig 12).
        reuse = 0.0
    staged = channel_first_fill_bytes(spec, config, reuse_fraction=reuse)
    streamed = gemm_b_traffic_bytes(shape.m, shape.k, shape.n, config) + gemm_c_traffic_bytes(
        shape.m, shape.n, config
    )
    if spec.is_pointwise():
        # 1x1: the single decomposed tile reads channel-contiguous vectors —
        # a stream, no gather (mirrors the channel-last path's special case).
        streamed += staged
        staged = 0
    else:
        # Channel-first staging reads dense C_I-contiguous vectors and
        # coalesces better than a window gather; fold the bonus into the
        # byte count so kernel_time's single staging rate applies.
        staged = int(staged / config.channel_first_staging_bonus)
    base = kernel_time(
        "implicit-channel-first",
        shape.m,
        shape.k,
        shape.n,
        streamed,
        config,
        macs=shape.macs,
        staged_bytes=staged,
    )
    kernel = base.scaled(1.0 + addressing_overhead, name=base.name)
    return ChannelFirstGPUResult(kernel=kernel, reuse_fraction=reuse, reordered=reorder)


def channel_first_conv_time(
    spec: ConvSpec,
    config: GPUConfig,
    reorder: bool = True,
    addressing_overhead: float = ADDRESSING_OVERHEAD,
) -> ChannelFirstGPUResult:
    """Kernel time of our block-level channel-first conv for one layer.

    ``reorder=False`` visits decomposed filters in naive row-major order
    (no inter-tile reuse) — the Fig 18b ablation baseline.
    """
    with trace.span("gpu.channel_first.time", layer=spec.describe(), reorder=reorder):
        result = _channel_first_conv_time(
            spec, config, reorder=reorder, addressing_overhead=addressing_overhead
        )
    trace_metrics.record_kernel(
        "gpu.channel_first", spec.describe() or "conv", result.seconds, result.tflops
    )
    if _audit.enabled():
        from ..audit import invariants as audit_invariants

        # Post-memoization on purpose: the published kernel is audited even
        # when the timing came out of the model cache.
        audit_invariants.check_gpu_kernel(result.kernel, config)
        audit_invariants.check_gpu_channel_first(spec, result, config)
    return result
