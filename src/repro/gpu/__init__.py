"""The tensor-core GPU substrate: a V100-like timing model and the three
convolution paths the paper compares — explicit im2col, implicit
channel-last (Lym-et-al.-style, the cuDNN stand-in's engine) and our
block-level implicit channel-first (Sec. V)."""

from .config import GPUConfig, TileConfig, V100
from .tensor_core import ComputeTime, padded_macs, tc_gemm_compute_seconds, wave_count
from .shared_memory import (
    channel_first_fill_bytes,
    channel_last_fill_bytes,
    gemm_a_traffic_bytes,
    gemm_b_traffic_bytes,
    gemm_c_traffic_bytes,
    shared_tile_fits,
)
from .blocked_gemm import KernelTime, gemm_kernel_time, kernel_time
from .explicit import ExplicitConvResult, explicit_conv_time, im2col_transform_time
from .channel_last import channel_last_conv_time
from .channel_first import ChannelFirstGPUResult, channel_first_conv_time
from .cudnn_model import cudnn_conv_time
from .functional import (
    BlockedChannelFirstKernel,
    BlockedChannelLastKernel,
    KernelStats,
)
from .variants import (
    deformable_conv_time_channel_first,
    deformable_conv_time_fallback,
    dilated_conv_times,
)

__all__ = [
    "GPUConfig",
    "TileConfig",
    "V100",
    "ComputeTime",
    "padded_macs",
    "tc_gemm_compute_seconds",
    "wave_count",
    "channel_first_fill_bytes",
    "channel_last_fill_bytes",
    "gemm_a_traffic_bytes",
    "gemm_b_traffic_bytes",
    "gemm_c_traffic_bytes",
    "shared_tile_fits",
    "KernelTime",
    "gemm_kernel_time",
    "kernel_time",
    "ExplicitConvResult",
    "explicit_conv_time",
    "im2col_transform_time",
    "channel_last_conv_time",
    "ChannelFirstGPUResult",
    "channel_first_conv_time",
    "cudnn_conv_time",
    "deformable_conv_time_channel_first",
    "deformable_conv_time_fallback",
    "dilated_conv_times",
    "BlockedChannelFirstKernel",
    "BlockedChannelLastKernel",
    "KernelStats",
]
