"""The explicit im2col path on the GPU (the Fig 2a baseline).

Two kernels:

1. **Transform kernel** — materialise the lowered matrix.  Pure data
   movement: read the IFMap (gather; each element is read once per receptive
   field it appears in, i.e. the *lowered* volume is read) and write the
   lowered matrix.  Bandwidth-bound by construction.
2. **GEMM kernel** — a plain DRAM-resident GEMM over the lowered matrix,
   identical to the implicit methods' GEMM shape.  This is why the paper's
   measurement shows the explicit method's GEMM time matching the implicit
   method's total time (Sec. II-B): the GEMM is the same; the transform is
   pure overhead.

The lowered matrix also costs DRAM *capacity*: ``workspace_bytes`` is the
Table I quantity.
"""

from __future__ import annotations

import dataclasses

from ..core.conv_spec import ConvSpec
from ..perf.cache import memoized_model
from .blocked_gemm import KernelTime, gemm_kernel_time, kernel_time
from .config import GPUConfig

__all__ = ["ExplicitConvResult", "explicit_conv_time", "im2col_transform_time"]


@dataclasses.dataclass(frozen=True)
class ExplicitConvResult:
    """Timing + workspace of the explicit path for one layer."""

    transform: KernelTime
    gemm: KernelTime
    workspace_bytes: int

    @property
    def seconds(self) -> float:
        return self.transform.seconds + self.gemm.seconds

    @property
    def transform_fraction(self) -> float:
        return self.transform.seconds / self.seconds if self.seconds > 0 else 0.0

    @property
    def tflops(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return 2 * self.gemm.macs / self.seconds / 1e12


@memoized_model
def im2col_transform_time(spec: ConvSpec, config: GPUConfig) -> KernelTime:
    """The lowering kernel: read the IFMap (gathers hit cache for the
    duplicated taps, so DRAM sees each input element about once) and write
    the lowered matrix once — ``ifmap + lowered`` bytes of traffic, zero
    MACs."""
    lowered = spec.lowered_bytes(config.elem_bytes)
    traffic = spec.ifmap_bytes(config.elem_bytes) + lowered
    memory_seconds = traffic / config.sustained_bandwidth_bps
    return KernelTime(
        name="im2col-transform",
        seconds=memory_seconds + config.kernel_overhead_s,
        compute_seconds=0.0,
        memory_seconds=memory_seconds,
        traffic_bytes=traffic,
        macs=0,
    )


@memoized_model
def explicit_conv_time(spec: ConvSpec, config: GPUConfig) -> ExplicitConvResult:
    """Full explicit-im2col conv: transform, then GEMM on the lowered matrix."""
    transform = im2col_transform_time(spec, config)
    gemm = gemm_kernel_time(spec.gemm_shape(), config, name="explicit-gemm")
    return ExplicitConvResult(
        transform=transform,
        gemm=gemm,
        workspace_bytes=spec.lowered_bytes(config.elem_bytes),
    )
