"""Config (de)serialisation: hardware configs as plain dicts / JSON files.

Design-space sweeps want to version their machine descriptions; this module
round-trips :class:`~repro.systolic.config.TPUConfig` and
:class:`~repro.gpu.config.GPUConfig` (with their nested HBM/SRAM/tile
configs) through JSON-safe dicts, preserving every field and validating on
load (construction re-runs the dataclasses' ``__post_init__`` checks).
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any, Dict

from .gpu.config import GPUConfig, TileConfig
from .memory.dram import HBMConfig
from .memory.sram import SRAMConfig
from .systolic.config import TPUConfig

__all__ = [
    "tpu_config_to_dict",
    "tpu_config_from_dict",
    "gpu_config_to_dict",
    "gpu_config_from_dict",
    "save_config",
    "load_tpu_config",
    "load_gpu_config",
]


def tpu_config_to_dict(config: TPUConfig) -> Dict[str, Any]:
    return dataclasses.asdict(config)


def gpu_config_to_dict(config: GPUConfig) -> Dict[str, Any]:
    return dataclasses.asdict(config)


def _build(cls, payload: Dict[str, Any], nested: Dict[str, Any]):
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = set(payload) - known
    if unknown:
        raise ValueError(f"unknown {cls.__name__} fields: {sorted(unknown)}")
    kwargs = dict(payload)
    for name, builder in nested.items():
        if name in kwargs and isinstance(kwargs[name], dict):
            kwargs[name] = builder(**kwargs[name])
    return cls(**kwargs)


def tpu_config_from_dict(payload: Dict[str, Any]) -> TPUConfig:
    return _build(TPUConfig, payload, {"hbm": HBMConfig, "sram": SRAMConfig})


def gpu_config_from_dict(payload: Dict[str, Any]) -> GPUConfig:
    return _build(GPUConfig, payload, {"tile": TileConfig})


def save_config(config, path) -> pathlib.Path:
    """Write any supported config as JSON; returns the path."""
    path = pathlib.Path(path)
    if isinstance(config, TPUConfig):
        payload = tpu_config_to_dict(config)
    elif isinstance(config, GPUConfig):
        payload = gpu_config_to_dict(config)
    else:
        raise TypeError(f"unsupported config type {type(config).__name__}")
    path.write_text(json.dumps(payload, indent=2))
    return path


def load_tpu_config(path) -> TPUConfig:
    return tpu_config_from_dict(json.loads(pathlib.Path(path).read_text()))


def load_gpu_config(path) -> GPUConfig:
    return gpu_config_from_dict(json.loads(pathlib.Path(path).read_text()))
