"""HBM/DRAM timing model — the DRAMSim3 substitute.

The paper uses DRAMSim3 only to price the off-chip side of SRAM fills.  What
the algorithm study actually needs from a DRAM model is:

1. peak streaming bandwidth for long contiguous bursts (700 GB/s on TPU-v2,
   900 GB/s on V100), and
2. realistic degradation for *fragmented* access patterns — short runs,
   strided hops, row-buffer misses — which is what separates the CHW and HWC
   layouts in Fig 7.

:class:`HBMModel` therefore models channels x banks with an open-page
row-buffer policy and fixed-size bursts, and prices an address trace by
walking it: each burst takes ``t_burst`` on its channel; a row-buffer miss
adds ``t_row_miss``.  Channels operate in parallel (addresses interleave
across channels at burst granularity), so the returned cycle count is the
max over channels — a standard bandwidth-structure abstraction that sits
between "flat bandwidth" and a full DRAM protocol model.

For layer-scale simulation the trace-walking path would be slow, so
:meth:`HBMModel.transfer_cycles` prices a transfer from summary statistics
(bytes, contiguous-run length) with the identical cost formula; the tests
assert the two paths agree on real traces.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..audit import auditor as _audit
from ..errors import ConfigError
from ..resilience import faults as _faults
from ..trace import tracer as trace

__all__ = ["HBMConfig", "HBMModel", "TransferStats", "run_length_stats"]


@dataclasses.dataclass(frozen=True)
class HBMConfig:
    """Timing/geometry of one HBM stack, defaulting to TPU-v2-like numbers.

    ``clock_ghz`` is the *accelerator core* clock the returned cycle counts
    are denominated in (0.7 GHz for the TPU config, per Tbl. II).
    """

    peak_bandwidth_gbps: float = 700.0
    clock_ghz: float = 0.7
    channels: int = 16
    banks_per_channel: int = 16
    row_bytes: int = 1024
    burst_bytes: int = 64
    # Extra latency of a row-buffer miss (activate+precharge), in core cycles.
    row_miss_penalty_cycles: float = 20.0
    # Fixed request overhead per independent transfer (command/queue), cycles.
    request_latency_cycles: float = 60.0

    def __post_init__(self) -> None:
        if self.peak_bandwidth_gbps <= 0:
            raise ConfigError(
                "bandwidth must be positive",
                field="peak_bandwidth_gbps", value=self.peak_bandwidth_gbps,
            )
        if self.clock_ghz <= 0:
            raise ConfigError(
                "clock must be positive", field="clock_ghz", value=self.clock_ghz
            )
        if self.channels <= 0:
            raise ConfigError(
                "channel count must be positive", field="channels", value=self.channels
            )
        if self.banks_per_channel <= 0:
            raise ConfigError(
                "bank count must be positive",
                field="banks_per_channel", value=self.banks_per_channel,
            )
        if self.burst_bytes <= 0:
            raise ConfigError(
                "burst size must be positive",
                field="burst_bytes", value=self.burst_bytes,
            )
        if self.row_bytes <= 0:
            raise ConfigError(
                "row size must be positive", field="row_bytes", value=self.row_bytes
            )
        if self.row_bytes % self.burst_bytes != 0:
            raise ConfigError(
                "row_bytes must be a multiple of burst_bytes",
                field="row_bytes", value=self.row_bytes,
            )

    @property
    def bytes_per_cycle(self) -> float:
        """Peak bytes the whole stack moves per core cycle."""
        return self.peak_bandwidth_gbps / self.clock_ghz

    @property
    def burst_cycles(self) -> float:
        """Core cycles one burst occupies on one channel at peak rate."""
        return self.burst_bytes / (self.bytes_per_cycle / self.channels)


@dataclasses.dataclass(frozen=True)
class TransferStats:
    """Summary of an access pattern, sufficient to price it.

    ``runs`` is the number of maximal contiguous byte ranges, ``bytes`` the
    total payload, and ``span_bytes`` the extent of the address region the
    transfer touches (>= bytes; equal for a fully contiguous stream).  The
    span bounds how many DRAM rows can possibly be activated: many short
    runs packed inside one row still cost one activation.
    """

    bytes: int
    runs: int
    span_bytes: int = 0  # 0 means "unknown": assume each run opens rows alone

    def __post_init__(self) -> None:
        if self.bytes < 0 or self.runs < 0 or self.span_bytes < 0:
            raise ValueError("negative stats")
        if (self.bytes == 0) != (self.runs == 0):
            raise ValueError("bytes and runs must be zero together")
        if self.span_bytes and self.span_bytes < self.bytes:
            raise ValueError("span cannot be smaller than the payload")

    @property
    def mean_run_bytes(self) -> float:
        return self.bytes / self.runs if self.runs else 0.0


def run_length_stats(addresses: Sequence[int], access_bytes: int) -> TransferStats:
    """Collapse a sorted-or-not address trace into :class:`TransferStats`.

    Two accesses belong to the same run when they are exactly adjacent in the
    byte address space *and* consecutive in the trace — matching how a DMA
    engine coalesces an in-order stream.
    """
    if access_bytes <= 0:
        raise ValueError("access_bytes must be positive")
    if len(addresses) == 0:
        return TransferStats(bytes=0, runs=0)
    trace = np.asarray(addresses, dtype=np.int64)
    runs = 1 + int(np.count_nonzero(np.diff(trace) != access_bytes))
    return TransferStats(bytes=len(addresses) * access_bytes, runs=runs)


class HBMModel:
    """Prices transfers against an :class:`HBMConfig`.

    The model is *stateless across transfers* (each transfer starts with cold
    row buffers): simulators call it per DMA request, and double buffering /
    overlap is the caller's job.
    """

    def __init__(self, config: HBMConfig = HBMConfig()):
        self.config = config

    # ------------------------------------------------------------ trace path
    def trace_cycles(self, addresses: Sequence[int], access_bytes: int) -> float:
        """Walk an explicit address trace and return core cycles.

        Addresses interleave across channels at burst granularity
        (``channel = (addr // burst) % channels``); each channel tracks its
        open row per bank.  The transfer completes when the slowest channel
        drains.
        """
        cfg = self.config
        if not addresses:
            return 0.0
        busy = [0.0] * cfg.channels
        open_row: List[dict] = [dict() for _ in range(cfg.channels)]
        last_row = [-(10 ** 9)] * cfg.channels
        seen_bursts = set()
        for addr in addresses:
            for offset in range(0, access_bytes, cfg.burst_bytes):
                burst_id = (addr + offset) // cfg.burst_bytes
                if burst_id in seen_bursts:
                    continue  # already fetched within this transfer
                seen_bursts.add(burst_id)
                channel = burst_id % cfg.channels
                # Rows are per-channel: a channel owns every channels-th
                # burst, and its rows group bursts_per_row of *its own*
                # bursts.
                bursts_per_row = cfg.row_bytes // cfg.burst_bytes
                row = (burst_id // cfg.channels) // bursts_per_row
                bank = row % cfg.banks_per_channel
                cost = cfg.burst_cycles
                if open_row[channel].get(bank) != row:
                    open_row[channel][bank] = row
                    if row == last_row[channel] + 1:
                        # Sequential row advance: the next bank's activate was
                        # issued while the previous row streamed, so only the
                        # amortised slice of the penalty is exposed.
                        cost += cfg.row_miss_penalty_cycles / cfg.banks_per_channel
                    else:
                        cost += cfg.row_miss_penalty_cycles
                if row != last_row[channel]:
                    last_row[channel] = row
                busy[channel] += cost
        total = max(busy) + cfg.request_latency_cycles
        if _faults.ACTIVE is not None:  # injected DRAM response drops
            total = _faults.ACTIVE.perturb_dram_cycles(total)
        if trace.enabled():
            trace.counter("hbm.trace_walks", 1, cat="hbm")
            trace.counter("hbm.trace_bursts", len(seen_bursts), cat="hbm")
            trace.counter("hbm.trace_cycles", total, cat="hbm")
        return total

    # --------------------------------------------------------- summary path
    def transfer_cycles(self, stats: TransferStats) -> float:
        """Price a transfer from summary statistics.

        Cost structure mirrors :meth:`trace_cycles`: payload moves at peak
        bandwidth; every run opens on average ``ceil(run_bytes / row_bytes)``
        rows whose activate penalties serialise per channel (divided by the
        channel count since independent runs spread across channels).
        """
        cfg = self.config
        if stats.bytes == 0:
            return 0.0
        # DRAM moves whole bursts: a run shorter than a burst still occupies
        # one burst slot, but bursts shared by runs inside the span are only
        # fetched once (mirroring the trace path's burst dedup).
        burst_limited = stats.runs * max(
            cfg.burst_bytes, math.ceil(stats.mean_run_bytes / cfg.burst_bytes) * cfg.burst_bytes
        )
        if stats.span_bytes:
            burst_limited = min(burst_limited, math.ceil(stats.span_bytes / cfg.burst_bytes) * cfg.burst_bytes)
        transferred = max(stats.bytes, burst_limited)
        payload_cycles = transferred / cfg.bytes_per_cycle
        per_run_rows = stats.runs * max(1.0, math.ceil(stats.mean_run_bytes / cfg.row_bytes))
        if stats.span_bytes:
            # Runs sharing a DRAM row share its activation: the touched-row
            # count is bounded by the rows the span covers.
            span_rows = math.ceil(stats.span_bytes / cfg.row_bytes)
            rows_touched = min(per_run_rows, max(1.0, span_rows))
        else:
            rows_touched = per_run_rows
        # Sequential activates pipeline across banks (amortised); each run
        # start additionally exposes one full activate.
        sequential = rows_touched * cfg.row_miss_penalty_cycles / cfg.banks_per_channel
        random_starts = min(stats.runs, rows_touched) * cfg.row_miss_penalty_cycles
        miss_cycles = (sequential + random_starts) / cfg.channels
        total = payload_cycles + miss_cycles + cfg.request_latency_cycles
        if _faults.ACTIVE is not None:  # injected DRAM response drops
            total = _faults.ACTIVE.perturb_dram_cycles(total)
        if trace.enabled():
            trace.counter("hbm.transfers", 1, cat="hbm")
            trace.counter("hbm.bytes", stats.bytes, cat="hbm")
            trace.counter("hbm.cycles", total, cat="hbm")
        if _audit.enabled():
            from ..audit import invariants as audit_invariants

            audit_invariants.check_hbm_transfer(stats, total, cfg)
        return total

    def contiguous_cycles(self, nbytes: int) -> float:
        """Cycles to stream ``nbytes`` as one contiguous run."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        return self.transfer_cycles(TransferStats(bytes=nbytes, runs=1))

    def strided_cycles(self, nbytes: int, run_bytes: int) -> float:
        """Cycles to move ``nbytes`` in runs of ``run_bytes`` each."""
        if nbytes == 0:
            return 0.0
        if run_bytes <= 0:
            raise ValueError("run_bytes must be positive")
        runs = max(1, math.ceil(nbytes / run_bytes))
        return self.transfer_cycles(TransferStats(bytes=nbytes, runs=runs))

    def effective_bandwidth_gbps(self, stats: TransferStats) -> float:
        """Achieved bandwidth for a pattern — the Fig 7 y-axis."""
        cycles = self.transfer_cycles(stats)
        if cycles == 0:
            return 0.0
        seconds = cycles / (self.config.clock_ghz * 1e9)
        return stats.bytes / seconds / 1e9
