"""DRAM access-pattern generation for IFMap tile fills (Fig 7).

Filling the on-chip SRAM with one channel-first tile means reading, for every
output pixel of the tile, the taps of one decomposed filter across all
channels (and batch).  The *logical* read set is layout-independent; the
*physical* address sequence — and hence the DRAM efficiency — depends
entirely on whether the IFMap lives in DRAM as CHW or HWC:

- **HWC/NHWC**: the ``C_I`` channels of one pixel are adjacent, and for
  stride 1 whole pixel rows of the tile are contiguous — long runs.
- **CHW/NCHW**: each channel contributes its own short (or unit, under
  stride > 1) runs — many fragmented accesses.

:func:`tile_fill_addresses` emits the exact byte-address trace a DMA engine
issues for one decomposed-filter tile fill; :func:`fill_stats` collapses it
to :class:`~repro.memory.dram.TransferStats`, and
:func:`compare_layout_fill` prices both layouts through the same
:class:`~repro.memory.dram.HBMModel` — the complete Fig 7 pipeline.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

import numpy as np

from ..core.channel_first import DecomposedFilter
from ..core.conv_spec import ConvSpec
from ..core.layouts import Layout
from ..trace import tracer as trace
from .dram import HBMModel, TransferStats, run_length_stats

__all__ = [
    "tile_fill_addresses",
    "fill_stats",
    "LayoutFillResult",
    "compare_layout_fill",
]


def _element_strides(layout: Layout, shape_nchw) -> Dict[str, int]:
    """Per-axis element strides of a tensor laid out per ``layout``.

    ``flatten_index`` computed as a Horner scheme is exactly
    ``n*sN + c*sC + h*sH + w*sW`` with these strides.
    """
    extents = dict(zip("NCHW", shape_nchw))
    strides: Dict[str, int] = {}
    acc = 1
    for axis in reversed(layout.value):
        strides[axis] = acc
        acc *= extents[axis]
    return strides


def tile_fill_addresses(
    spec: ConvSpec,
    tile: DecomposedFilter,
    layout: Layout,
    elem_bytes: int = 2,
    max_rows: int = None,
) -> np.ndarray:
    """Byte addresses read from DRAM to fill one decomposed tile.

    Visits output pixels in raster order and, for each, all channels of the
    tap — the fill order of the HWC(N) on-chip layout.  Under ``NHWC`` this
    emits the channel group as one access at its base address with
    ``C_I * elem_bytes`` granularity handled by the caller via
    :func:`fill_stats`; to keep the trace exact we emit one address per
    element for every layout.  Taps that fall in the zero-padding halo issue
    no DRAM traffic.  ``max_rows`` caps the number of output rows traced
    (address traces are O(tile size); experiments trace a representative
    slice and scale).

    The trace is generated with integer array arithmetic (the address of
    ``(n, c, y, x)`` is a dot product with the layout's element strides) and
    returned as an ``int64`` array in exactly the raster-then-channels order
    of the element-by-element walk.
    """
    rows = spec.h_out if max_rows is None else min(max_rows, spec.h_out)
    y0, x0 = spec.tap_coordinate(0, 0, tile.r, tile.s)
    y = y0 + np.arange(rows, dtype=np.int64) * spec.stride
    x = x0 + np.arange(spec.w_out, dtype=np.int64) * spec.stride
    valid = ((y >= 0) & (y < spec.h_in))[:, None] & ((x >= 0) & (x < spec.w_in))[None, :]
    strides = _element_strides(layout, spec.ifmap_shape)
    batch = np.arange(spec.n, dtype=np.int64) * strides["N"]
    # (N, rows, W_O) base element offsets, masked to in-bounds taps in
    # C-order = (batch, raster) order — the loop nest's visit order.
    base = batch[:, None, None] + (y * strides["H"])[None, :, None] + (x * strides["W"])[None, None, :]
    taps = base[np.broadcast_to(valid[None, :, :], base.shape)]
    channels = np.arange(spec.c_in, dtype=np.int64) * strides["C"]
    return ((taps[:, None] + channels[None, :]) * elem_bytes).ravel()


def fill_stats(
    spec: ConvSpec,
    tile: DecomposedFilter,
    layout: Layout,
    elem_bytes: int = 2,
    max_rows: int = None,
) -> TransferStats:
    """Run-length statistics for one decomposed-tile fill.

    Addresses are sorted before coalescing, modelling a DMA engine that
    issues the tile's requests in address order (the standard optimisation;
    without it CHW would look even worse).
    """
    addresses = np.sort(
        tile_fill_addresses(spec, tile, layout, elem_bytes, max_rows=max_rows)
    )
    return run_length_stats(addresses, elem_bytes)


@dataclasses.dataclass(frozen=True)
class LayoutFillResult:
    """Fill cost of one tile under one DRAM layout."""

    layout: Layout
    stats: TransferStats
    cycles: float
    effective_bandwidth_gbps: float

    @property
    def mean_run_bytes(self) -> float:
        return self.stats.mean_run_bytes


def compare_layout_fill(
    spec: ConvSpec,
    tile: DecomposedFilter,
    hbm: HBMModel,
    elem_bytes: int = 2,
    layouts=(Layout.NHWC, Layout.NCHW),
    max_rows: int = None,
) -> Dict[Layout, LayoutFillResult]:
    """Price the same tile fill under several DRAM layouts (Fig 7)."""
    results = {}
    with trace.span(
        "memory.layout_fill", layer=spec.describe(), tap=f"r{tile.r}s{tile.s}"
    ):
        for layout in layouts:
            stats = fill_stats(spec, tile, layout, elem_bytes, max_rows=max_rows)
            results[layout] = LayoutFillResult(
                layout=layout,
                stats=stats,
                cycles=hbm.transfer_cycles(stats),
                effective_bandwidth_gbps=hbm.effective_bandwidth_gbps(stats),
            )
    return results


def analytic_fill_stats(
    spec: ConvSpec, layout: Layout, elem_bytes: int = 2
) -> TransferStats:
    """Closed-form fill statistics for one decomposed-tile fill, ignoring
    padding halos (used at layer scale where tracing is too slow).

    HWC: each output row of the tile reads ``W_O`` taps x ``C_I`` channels;
    at stride 1 the whole row is one run of ``W_O*C_I`` elements, at stride
    s > 1 each tap's channel group is its own ``C_I``-element run.
    CHW: runs never span channels; at stride 1 a run is ``W_O`` elements,
    at stride s > 1 a single element.
    """
    taps = spec.n * spec.h_out * spec.w_out
    total_elems = taps * spec.c_in
    if layout in (Layout.NHWC, Layout.HWCN):
        if spec.stride == 1 and spec.dilation == 1:
            runs = spec.n * spec.h_out  # one run per tile row
        else:
            runs = taps  # one C_I-wide run per tap
    elif layout in (Layout.NCHW, Layout.CHWN):
        if spec.stride == 1 and spec.dilation == 1:
            runs = spec.n * spec.c_in * spec.h_out
        else:
            runs = total_elems
    else:
        raise ValueError(f"unsupported layout {layout}")
    return TransferStats(bytes=total_elems * elem_bytes, runs=runs)
