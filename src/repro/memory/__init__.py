"""Memory substrates: the HBM/DRAM timing model (DRAMSim3 substitute), the
analytic SRAM macro model (CACTI/OpenRAM substitute) and the access-pattern
machinery that connects convolution tile fills to DRAM behaviour."""

from .dram import HBMConfig, HBMModel, TransferStats, run_length_stats
from .sram import SRAMConfig, SRAMModel
from .access_pattern import (
    LayoutFillResult,
    analytic_fill_stats,
    compare_layout_fill,
    fill_stats,
    tile_fill_addresses,
)

__all__ = [
    "HBMConfig",
    "HBMModel",
    "TransferStats",
    "run_length_stats",
    "SRAMConfig",
    "SRAMModel",
    "LayoutFillResult",
    "analytic_fill_stats",
    "compare_layout_fill",
    "fill_stats",
    "tile_fill_addresses",
]
