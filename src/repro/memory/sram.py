"""Analytic SRAM macro model — the CACTI / OpenRAM substitute.

Fig 16b studies how the vector memory's *word size* trades area against
bandwidth utilisation: the paper quotes (for a fixed 256 KB macro in
freepdk45) that a 4-byte word costs ~3.2x the area of a 32-byte word, and
that a word of 1 element costs ~5x the area of the large-word minimum.

A full memory compiler is out of scope offline; what the experiment needs is
an area model with the right *structure*, calibrated to those quoted points.
The dominant physical effect is amortisation of peripheral circuitry: an
SRAM macro is ``rows x (word_bits)`` of cells plus per-column sense
amps/drivers and a row decoder.  Narrow words force tall arrays — many rows,
a big decoder, and poor cell-array aspect ratio — so area per bit grows as
the word narrows.  We model:

    area(capacity, word) = cell_area * bits                      (cells)
                         + word_bits * column_overhead            (sense/drive)
                         + rows * row_overhead                    (decoder/wordline)
                         + fixed_overhead                          (control)

with the three overhead coefficients fitted to the paper's two quoted ratios
(see ``_CALIBRATION`` and the tests, which pin the ratios to within a few
percent).  Latency and energy use standard logarithmic/square-root scaling
in capacity so the DMA engine has self-consistent access costs.
"""

from __future__ import annotations

import dataclasses
import math

from ..audit import auditor as _audit
from ..errors import ConfigError
from ..resilience import faults as _faults

__all__ = ["SRAMConfig", "SRAMModel"]


@dataclasses.dataclass(frozen=True)
class SRAMConfig:
    """Process/geometry constants for the analytic macro model (freepdk45).

    The defaults are calibrated so that, at 256 KB:
      area(word=4B) / area(word=32B)  ~= 3.2  (paper Sec. IV-C), and
      area(word=4B) / area(word=128B) ~= 4-5  ("word size 1 [element] leads
      to a 5x overhead" vs the large-word minimum, Sec. VII),
    matching the ratios the paper quotes from OpenRAM.  Elements are 4 B on
    the TPU, so word sizes 1..32 elements span 4..128 bytes.
    """

    # 6T cell area in um^2 (freepdk45-class).
    cell_area_um2: float = 0.30
    # Area per column of peripheral circuitry (sense amp, write driver,
    # column mux), um^2 per bitline column.
    column_overhead_um2: float = 10.0
    # Area per row (wordline driver + decoder slice), um^2 per row.
    row_overhead_um2: float = 35.3
    # Fixed control/timing block area, um^2 per macro.
    fixed_overhead_um2: float = 2000.0
    # Latency model constants (ns): t = a + b * sqrt(capacity_kb).
    latency_base_ns: float = 0.2
    latency_sqrt_coeff_ns: float = 0.035
    # Energy per access: e = (base + per_bit * word_bits) pJ.
    energy_base_pj: float = 5.0
    energy_per_bit_pj: float = 0.02

    def __post_init__(self) -> None:
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if value <= 0:
                raise ConfigError(
                    "must be positive", field=field.name, value=value
                )


class SRAMModel:
    """Area / latency / energy of an SRAM macro vs (capacity, word width)."""

    def __init__(self, config: SRAMConfig = SRAMConfig()):
        self.config = config

    def _geometry(self, capacity_bytes: int, word_bytes: int):
        if capacity_bytes <= 0 or word_bytes <= 0:
            raise ValueError("capacity and word size must be positive")
        if capacity_bytes % word_bytes != 0:
            raise ValueError(
                f"capacity {capacity_bytes} not a multiple of word {word_bytes}"
            )
        word_bits = 8 * word_bytes
        rows = capacity_bytes // word_bytes
        return word_bits, rows

    def area_um2(self, capacity_bytes: int, word_bytes: int) -> float:
        """Macro area in um^2 (see module docstring for the model)."""
        cfg = self.config
        word_bits, rows = self._geometry(capacity_bytes, word_bytes)
        bits = 8 * capacity_bytes
        return (
            cfg.cell_area_um2 * bits
            + cfg.column_overhead_um2 * word_bits
            + cfg.row_overhead_um2 * rows
            + cfg.fixed_overhead_um2
        )

    def area_mm2(self, capacity_bytes: int, word_bytes: int) -> float:
        return self.area_um2(capacity_bytes, word_bytes) / 1e6

    def area_ratio(self, capacity_bytes: int, word_bytes: int, reference_word_bytes: int) -> float:
        """Area relative to the same capacity at a reference word size —
        the normalised y-axis of Fig 16b."""
        return self.area_um2(capacity_bytes, word_bytes) / self.area_um2(
            capacity_bytes, reference_word_bytes
        )

    def access_latency_ns(self, capacity_bytes: int) -> float:
        """Read latency; sqrt-of-capacity wire-dominated scaling."""
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        effective = float(capacity_bytes)
        if _faults.ACTIVE is not None:  # injected capacity-assumption flip
            effective = _faults.ACTIVE.sram_effective_capacity(capacity_bytes)
        kb = effective / 1024.0
        latency = (
            self.config.latency_base_ns
            + self.config.latency_sqrt_coeff_ns * math.sqrt(kb)
        )
        if _faults.ACTIVE is not None:  # injected latency flip
            latency = _faults.ACTIVE.perturb_sram_latency(latency)
        if _audit.enabled():
            from ..audit import invariants as audit_invariants

            audit_invariants.check_sram_latency(latency, capacity_bytes)
        return latency

    def access_latency_cycles(self, capacity_bytes: int, clock_ghz: float) -> float:
        if clock_ghz <= 0:
            raise ValueError("clock must be positive")
        return self.access_latency_ns(capacity_bytes) * clock_ghz

    def access_energy_pj(self, word_bytes: int) -> float:
        if word_bytes <= 0:
            raise ValueError("word size must be positive")
        return self.config.energy_base_pj + self.config.energy_per_bit_pj * 8 * word_bytes


def _calibration_check() -> None:
    """Import-time pin of the paper's quoted OpenRAM ratios (tolerant)."""
    model = SRAMModel()
    cap = 256 * 1024
    r_4_vs_32 = model.area_ratio(cap, 4, 32)
    r_4_vs_128 = model.area_ratio(cap, 4, 128)
    assert 2.8 <= r_4_vs_32 <= 3.6, f"4B-vs-32B ratio {r_4_vs_32} off calibration"
    assert 3.5 <= r_4_vs_128 <= 5.5, f"4B-vs-128B ratio {r_4_vs_128} off calibration"


_calibration_check()
