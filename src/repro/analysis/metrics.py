"""Performance metrics and error statistics used across experiments."""

from __future__ import annotations

import dataclasses
import math
from typing import Sequence

__all__ = [
    "tflops",
    "normalized",
    "relative_error",
    "mean_absolute_percentage_error",
    "ErrorStats",
    "error_stats",
    "geometric_mean",
]


def tflops(macs: int, seconds: float) -> float:
    """TFLOPS at 2 FLOPs per MAC."""
    if seconds <= 0:
        raise ValueError(f"seconds must be positive, got {seconds}")
    return 2 * macs / seconds / 1e12


def normalized(values: Sequence[float], reference: float) -> list:
    """Values divided by a reference (the paper's normalized-time bars)."""
    if reference <= 0:
        raise ValueError(f"reference must be positive, got {reference}")
    return [v / reference for v in values]


def relative_error(simulated: float, measured: float) -> float:
    """|sim - meas| / meas — the per-point validation error."""
    if measured <= 0:
        raise ValueError(f"measured must be positive, got {measured}")
    return abs(simulated - measured) / measured


def mean_absolute_percentage_error(
    simulated: Sequence[float], measured: Sequence[float]
) -> float:
    """MAPE in percent — the aggregate the paper quotes (4.42%, 5.8%, ...)."""
    if len(simulated) != len(measured) or not simulated:
        raise ValueError("sequences must be equal-length and non-empty")
    return 100.0 * sum(
        relative_error(s, m) for s, m in zip(simulated, measured)
    ) / len(simulated)


@dataclasses.dataclass(frozen=True)
class ErrorStats:
    """Distributional summary of per-point relative errors (Fig 15b)."""

    count: int
    mean_pct: float
    median_pct: float
    p90_pct: float
    max_pct: float


def error_stats(simulated: Sequence[float], measured: Sequence[float]) -> ErrorStats:
    if len(simulated) != len(measured) or not simulated:
        raise ValueError("sequences must be equal-length and non-empty")
    errors = sorted(
        100.0 * relative_error(s, m) for s, m in zip(simulated, measured)
    )
    n = len(errors)

    def _quantile(q: float) -> float:
        index = min(n - 1, max(0, int(math.ceil(q * n)) - 1))
        return errors[index]

    return ErrorStats(
        count=n,
        mean_pct=sum(errors) / n,
        median_pct=_quantile(0.5),
        p90_pct=_quantile(0.9),
        max_pct=errors[-1],
    )


def geometric_mean(values: Sequence[float]) -> float:
    """Geomean, the right average for speedup ratios."""
    if not values:
        raise ValueError("values must be non-empty")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
