"""Roofline helpers: arithmetic intensity and bound classification.

Used by the experiment write-ups to annotate which regime each layer sits in
(the stride experiments are at heart roofline-crossing stories) and by the
Fig 18b layer selection rationale.
"""

from __future__ import annotations

import dataclasses

from ..core.conv_spec import ConvSpec, GemmShape

__all__ = [
    "RooflinePoint",
    "conv_roofline",
    "gemm_roofline",
    "ridge_intensity",
    "cycle_lower_bound",
]


@dataclasses.dataclass(frozen=True)
class RooflinePoint:
    """One workload placed on a machine's roofline."""

    intensity_flops_per_byte: float
    attainable_tflops: float
    peak_tflops: float
    bound: str  # "compute" | "memory"

    @property
    def memory_bound(self) -> bool:
        return self.bound == "memory"


def ridge_intensity(peak_tflops: float, bandwidth_gbps: float) -> float:
    """The intensity at which the rooflines meet (FLOPs/byte)."""
    if peak_tflops <= 0 or bandwidth_gbps <= 0:
        raise ValueError("peak and bandwidth must be positive")
    return peak_tflops * 1e12 / (bandwidth_gbps * 1e9)


def _place(flops: int, traffic_bytes: int, peak_tflops: float, bandwidth_gbps: float):
    if traffic_bytes <= 0:
        raise ValueError("traffic must be positive")
    intensity = flops / traffic_bytes
    memory_roof = bandwidth_gbps * 1e9 * intensity / 1e12
    attainable = min(peak_tflops, memory_roof)
    bound = "compute" if memory_roof >= peak_tflops else "memory"
    return RooflinePoint(
        intensity_flops_per_byte=intensity,
        attainable_tflops=attainable,
        peak_tflops=peak_tflops,
        bound=bound,
    )


def conv_roofline(
    spec: ConvSpec, peak_tflops: float, bandwidth_gbps: float, elem_bytes: int = 2
) -> RooflinePoint:
    """Place a conv layer on the roofline using compulsory traffic
    (IFMap + weights + OFMap, each moved once)."""
    traffic = (
        spec.ifmap_bytes(elem_bytes) + spec.filter_bytes(elem_bytes) + spec.ofmap_bytes(elem_bytes)
    )
    return _place(spec.flops, traffic, peak_tflops, bandwidth_gbps)


def gemm_roofline(
    shape: GemmShape, peak_tflops: float, bandwidth_gbps: float, elem_bytes: int = 2
) -> RooflinePoint:
    return _place(shape.flops, shape.bytes_moved(elem_bytes), peak_tflops, bandwidth_gbps)


def cycle_lower_bound(
    macs: int,
    peak_macs_per_cycle: float,
    read_bytes: int = 0,
    write_bytes: int = 0,
    bytes_per_cycle: float = 0.0,
) -> float:
    """A directional roofline lower bound on a layer's cycle count.

    No schedule can beat the compute roof (``macs / peak_macs_per_cycle``)
    or either memory direction's streaming time at peak per-direction
    bandwidth (``bytes / bytes_per_cycle``).  Reads and writes are bounded
    *separately* — the memory system moves them on independent channels,
    so summing them (the classic single-stream roofline) would overstate
    the bound for bidirectional HBM.  The audit layer uses this as the
    ``*.latency.roofline`` invariant: simulated cycles below this value
    mean the model created throughput out of thin air.
    """
    if peak_macs_per_cycle <= 0:
        raise ValueError("peak_macs_per_cycle must be positive")
    bound = macs / peak_macs_per_cycle
    if bytes_per_cycle > 0:
        bound = max(bound, read_bytes / bytes_per_cycle, write_bytes / bytes_per_cycle)
    return bound
