"""Analysis: metrics, roofline placement, and simulator-vs-measurement
validation machinery."""

from .metrics import (
    ErrorStats,
    error_stats,
    geometric_mean,
    mean_absolute_percentage_error,
    normalized,
    relative_error,
    tflops,
)
from .roofline import RooflinePoint, conv_roofline, gemm_roofline, ridge_intensity
from .validation import ValidationPoint, ValidationRun

__all__ = [
    "ErrorStats",
    "error_stats",
    "geometric_mean",
    "mean_absolute_percentage_error",
    "normalized",
    "relative_error",
    "tflops",
    "RooflinePoint",
    "conv_roofline",
    "gemm_roofline",
    "ridge_intensity",
    "ValidationPoint",
    "ValidationRun",
]
