"""Simulator-vs-measurement comparison machinery (Figs 13, 14b, 15).

A :class:`ValidationRun` collects (label, simulated, measured) points and
summarises them the way the paper reports validation: per-point relative
errors, the average error, and the layer-wise error distribution.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Tuple

from .metrics import ErrorStats, error_stats, mean_absolute_percentage_error, relative_error

__all__ = ["ValidationPoint", "ValidationRun"]


@dataclasses.dataclass(frozen=True)
class ValidationPoint:
    """One workload's simulated-vs-measured pair (any consistent unit)."""

    label: str
    simulated: float
    measured: float

    @property
    def error_pct(self) -> float:
        return 100.0 * relative_error(self.simulated, self.measured)


@dataclasses.dataclass
class ValidationRun:
    """An accumulating set of validation points."""

    name: str
    points: List[ValidationPoint] = dataclasses.field(default_factory=list)

    def add(self, label: str, simulated: float, measured: float) -> ValidationPoint:
        point = ValidationPoint(label=label, simulated=simulated, measured=measured)
        self.points.append(point)
        return point

    @property
    def labels(self) -> Tuple[str, ...]:
        return tuple(p.label for p in self.points)

    def mape(self) -> float:
        """Mean absolute percentage error — the paper's headline number."""
        return mean_absolute_percentage_error(
            [p.simulated for p in self.points], [p.measured for p in self.points]
        )

    def stats(self) -> ErrorStats:
        return error_stats(
            [p.simulated for p in self.points], [p.measured for p in self.points]
        )

    def worst(self, k: int = 3) -> Sequence[ValidationPoint]:
        """The k worst-validated points (useful when debugging the model)."""
        return sorted(self.points, key=lambda p: p.error_pct, reverse=True)[:k]

    def assert_mape_below(self, threshold_pct: float) -> None:
        """Raise if the run's MAPE exceeds a threshold (used by tests)."""
        actual = self.mape()
        if actual > threshold_pct:
            worst = ", ".join(f"{p.label}:{p.error_pct:.1f}%" for p in self.worst())
            raise AssertionError(
                f"{self.name}: MAPE {actual:.2f}% exceeds {threshold_pct}% (worst: {worst})"
            )
