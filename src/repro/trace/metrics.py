"""Per-layer cycle accounting with invariant audits.

The paper's evaluation (Figs 13-15) rests on *where cycles go* — compute vs.
DMA vs. exposed DMA vs. pipeline fill/drain.  This module is the ledger that
keeps those attributions honest across every execution path (per-item
reference, vectorized ScheduleArrays, memoized, ``--jobs N``):

- :class:`LayerCycleRecord` — one simulated layer/GEMM's breakdown, as
  recorded by the instrumented simulators;
- :func:`audit_record` — the invariants every record must satisfy, raising
  :class:`CycleAccountingError` with a precise message when one does not:

  1. every component is finite and non-negative;
  2. **exposure identity**: ``exposed_dma_cycles`` equals
     ``max(0, cycles - compute_cycles / arrays)`` *bit-exactly* — the same
     expression every executor uses, so any re-derivation drift fails loudly;
  3. the array cannot be busier than the makespan allows:
     ``compute_cycles <= arrays * cycles`` (tiny relative tolerance for the
     differently-associated float sums);
  4. work implies time: ``macs > 0`` forces ``cycles > 0``;
  5. utilization stays within ``[0, 1]``.

- :class:`MetricsRegistry` — accumulates records, audits on entry, and
  cross-checks **cache coherence**: two records under the same memo key
  (one miss, one hit) must carry identical numbers, so a stale or corrupted
  cache entry is caught the moment it is served.

Everything is inert unless tracing is enabled — the module-level
:func:`record_layer` / :func:`record_kernel` helpers return immediately
otherwise, keeping the simulators' hot paths free of bookkeeping.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Tuple

from .tracer import enabled as _tracing
from .tracer import get_tracer

__all__ = [
    "CycleAccountingError",
    "LayerCycleRecord",
    "KernelTimeRecord",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS_S",
    "audit_record",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "record_layer",
    "record_kernel",
]

#: Default histogram buckets for harness-level latencies, in seconds
#: (Prometheus-style upper bounds; +Inf is implicit).
DEFAULT_LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Relative slack for inequality audits only (sums associated differently by
#: the reference and vectorized executors).  Identities are checked exactly.
_REL_TOL = 1e-9


class CycleAccountingError(AssertionError):
    """A cycle-accounting invariant was violated."""


@dataclasses.dataclass(frozen=True)
class LayerCycleRecord:
    """One layer's (or GEMM primitive's) cycle breakdown.

    ``arrays`` is the number of MXUs the compute-busy cycles are spread over
    (1 everywhere except the dual-MXU design study); ``key`` identifies the
    memo entry the result came from, enabling the hit-vs-miss coherence
    audit.
    """

    source: str
    name: str
    cycles: float
    compute_cycles: float
    dma_cycles: float
    exposed_dma_cycles: float
    macs: int
    utilization: float = 0.0
    group_size: int = 1
    arrays: int = 1
    key: Optional[Tuple] = None

    def identity(self) -> Tuple:
        """The fields two records sharing a memo key must agree on.

        The label is excluded on purpose: the cache re-labels shared entries
        (``spec_key`` drops ``ConvSpec.name``), and that is legal — only the
        numbers must match.
        """
        return (
            self.cycles,
            self.compute_cycles,
            self.dma_cycles,
            self.exposed_dma_cycles,
            self.macs,
            self.group_size,
            self.arrays,
        )


@dataclasses.dataclass(frozen=True)
class KernelTimeRecord:
    """One GPU kernel timing (the tensor-core models account in seconds)."""

    source: str
    name: str
    seconds: float
    tflops: float


def audit_record(record: LayerCycleRecord) -> None:
    """Raise :class:`CycleAccountingError` unless every invariant holds."""
    numeric = {
        "cycles": record.cycles,
        "compute_cycles": record.compute_cycles,
        "dma_cycles": record.dma_cycles,
        "exposed_dma_cycles": record.exposed_dma_cycles,
    }
    for field, value in numeric.items():
        if not math.isfinite(value):
            raise CycleAccountingError(
                f"{record.source}:{record.name}: {field} is not finite ({value})"
            )
        if value < 0:
            raise CycleAccountingError(
                f"{record.source}:{record.name}: {field} is negative ({value})"
            )
    if record.macs < 0:
        raise CycleAccountingError(
            f"{record.source}:{record.name}: negative MAC count {record.macs}"
        )
    if record.arrays < 1:
        raise CycleAccountingError(
            f"{record.source}:{record.name}: arrays must be >= 1, got {record.arrays}"
        )
    if record.macs > 0 and record.cycles <= 0:
        raise CycleAccountingError(
            f"{record.source}:{record.name}: {record.macs} MACs took "
            f"{record.cycles} cycles — work must cost time"
        )
    # The exposure identity, evaluated with the exact expression every
    # executor uses so the comparison is bit-for-bit.
    expected_exposed = max(0.0, record.cycles - record.compute_cycles / record.arrays)
    if record.exposed_dma_cycles != expected_exposed:
        raise CycleAccountingError(
            f"{record.source}:{record.name}: exposure identity broken — "
            f"exposed_dma_cycles={record.exposed_dma_cycles!r} but "
            f"max(0, cycles - compute/arrays)={expected_exposed!r}"
        )
    if record.compute_cycles > record.arrays * record.cycles * (1 + _REL_TOL):
        raise CycleAccountingError(
            f"{record.source}:{record.name}: compute_cycles "
            f"{record.compute_cycles} exceeds {record.arrays} array(s) x "
            f"cycles {record.cycles}"
        )
    if not (0.0 <= record.utilization <= 1 + _REL_TOL):
        raise CycleAccountingError(
            f"{record.source}:{record.name}: utilization {record.utilization} "
            f"outside [0, 1]"
        )


class Histogram:
    """A Prometheus-style histogram: bucket counts, sum and total count.

    Buckets are upper bounds (``le``); the implicit ``+Inf`` bucket is the
    total count.  Observations are plain appends — no per-observation
    allocation beyond the counter bumps — and two histograms over the same
    buckets merge by addition (worker processes ship theirs home).
    """

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_S):
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        self.counts: List[int] = [0] * len(self.buckets)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        if not math.isfinite(value):
            raise ValueError(f"histogram observation must be finite, got {value}")
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                break

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(le, cumulative count)`` pairs, ending with ``(inf, count)``."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            out.append((bound, running))
        out.append((math.inf, self.count))
        return out

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        if self.buckets != other.buckets:
            raise ValueError("cannot merge histograms with different buckets")
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.sum += other.sum
        self.count += other.count

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form (benchmark reports embed these)."""
        return {
            "buckets": [
                {"le": bound, "count": count}
                for bound, count in zip(self.buckets, self.counts)
                if count
            ],
            "sum": self.sum,
            "count": self.count,
        }


class MetricsRegistry:
    """Accumulates audited records and cross-checks cache coherence.

    Beyond the per-layer cycle ledger, the registry also carries
    harness-level **scalar metrics** — named counters, gauges and
    :class:`Histogram` s — which :mod:`repro.obs.prom` renders in
    Prometheus text format.  Counters are monotonic by contract (negative
    increments are rejected, same rule as the tracer's counter events).
    """

    __slots__ = ("_layers", "_kernels", "_by_key", "_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._layers: List[LayerCycleRecord] = []
        self._kernels: List[KernelTimeRecord] = []
        self._by_key: Dict[Tuple, LayerCycleRecord] = {}
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ---------------------------------------------------------------- record
    def record_layer(self, record: LayerCycleRecord) -> None:
        audit_record(record)
        if record.key is not None:
            first = self._by_key.get(record.key)
            if first is None:
                self._by_key[record.key] = record
            elif first.identity() != record.identity():
                raise CycleAccountingError(
                    f"cache coherence broken for {record.source}:{record.name}: "
                    f"hit returned {record.identity()} but the original "
                    f"computation recorded {first.identity()}"
                )
        self._layers.append(record)

    def record_kernel(self, record: KernelTimeRecord) -> None:
        if not math.isfinite(record.seconds) or record.seconds < 0:
            raise CycleAccountingError(
                f"{record.source}:{record.name}: kernel seconds must be finite "
                f"and non-negative, got {record.seconds}"
            )
        if record.tflops < 0:
            raise CycleAccountingError(
                f"{record.source}:{record.name}: negative TFLOPS {record.tflops}"
            )
        self._kernels.append(record)

    def merge(self, layers, kernels=()) -> None:
        """Fold records shipped back from a worker process into this registry."""
        for record in layers:
            self.record_layer(record)
        for record in kernels:
            self.record_kernel(record)

    # ----------------------------------------------------------- scalar metrics
    def inc_counter(self, name: str, value: float = 1.0) -> float:
        """Bump a monotonic counter; returns the new total."""
        if value < 0:
            raise ValueError(f"counter {name!r} increment must be >= 0, got {value}")
        total = self._counters.get(name, 0.0) + value
        self._counters[name] = total
        return total

    def set_gauge(self, name: str, value: float) -> None:
        """Set a point-in-time gauge (last write wins)."""
        self._gauges[name] = float(value)

    def observe(
        self, name: str, value: float, buckets: Optional[Tuple[float, ...]] = None
    ) -> None:
        """Record one observation into the named histogram (created on first use)."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = Histogram(buckets or DEFAULT_LATENCY_BUCKETS_S)
            self._histograms[name] = histogram
        histogram.observe(value)

    @property
    def counters(self) -> Dict[str, float]:
        return dict(self._counters)

    @property
    def gauges(self) -> Dict[str, float]:
        return dict(self._gauges)

    @property
    def histograms(self) -> Dict[str, Histogram]:
        return dict(self._histograms)

    # -------------------------------------------------------------- accessors
    @property
    def layers(self) -> List[LayerCycleRecord]:
        return list(self._layers)

    @property
    def kernels(self) -> List[KernelTimeRecord]:
        return list(self._kernels)

    def __len__(self) -> int:
        return len(self._layers) + len(self._kernels)

    def clear(self) -> None:
        self._layers.clear()
        self._kernels.clear()
        self._by_key.clear()
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def audit(self) -> int:
        """Re-audit every stored layer record; returns how many were checked."""
        for record in self._layers:
            audit_record(record)
        return len(self._layers)

    def by_source(self) -> Dict[str, Dict[str, float]]:
        """Aggregate cycle accounting per instrumentation source."""
        out: Dict[str, Dict[str, float]] = {}
        for record in self._layers:
            agg = out.setdefault(
                record.source,
                {
                    "layers": 0,
                    "cycles": 0.0,
                    "array_cycles": 0.0,
                    "compute_cycles": 0.0,
                    "dma_cycles": 0.0,
                    "exposed_dma_cycles": 0.0,
                    "macs": 0,
                },
            )
            agg["layers"] += 1
            agg["cycles"] += record.cycles
            # Compute capacity: the makespan times how many arrays could have
            # been busy, so compute% stays <= 100 for the dual-MXU source.
            agg["array_cycles"] += record.arrays * record.cycles
            agg["compute_cycles"] += record.compute_cycles
            agg["dma_cycles"] += record.dma_cycles
            agg["exposed_dma_cycles"] += record.exposed_dma_cycles
            agg["macs"] += record.macs
        return out


#: Process-global registry behind the module-level helpers.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the global registry (tests); returns the previous one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous


def record_layer(
    source: str,
    result,
    key: Optional[Tuple] = None,
    arrays: int = 1,
) -> None:
    """Record a ``LayerResult``-shaped object; no-op unless tracing is on."""
    if not _tracing():
        return
    record = LayerCycleRecord(
        source=source,
        name=result.name,
        cycles=result.cycles,
        compute_cycles=result.compute_cycles,
        dma_cycles=result.dma_cycles,
        exposed_dma_cycles=result.exposed_dma_cycles,
        macs=result.macs,
        utilization=result.utilization,
        group_size=getattr(result, "group_size", 1),
        arrays=arrays,
        key=key,
    )
    _REGISTRY.record_layer(record)
    get_tracer().instant(
        f"{source}.layer",
        cat="metrics",
        layer=record.name,
        cycles=record.cycles,
        compute_cycles=record.compute_cycles,
        exposed_dma_cycles=record.exposed_dma_cycles,
    )


def record_kernel(source: str, name: str, seconds: float, tflops: float) -> None:
    """Record a GPU kernel timing; no-op unless tracing is on."""
    if not _tracing():
        return
    _REGISTRY.record_kernel(
        KernelTimeRecord(source=source, name=name, seconds=seconds, tflops=tflops)
    )
