"""Per-layer cycle accounting with invariant audits.

The paper's evaluation (Figs 13-15) rests on *where cycles go* — compute vs.
DMA vs. exposed DMA vs. pipeline fill/drain.  This module is the ledger that
keeps those attributions honest across every execution path (per-item
reference, vectorized ScheduleArrays, memoized, ``--jobs N``):

- :class:`LayerCycleRecord` — one simulated layer/GEMM's breakdown, as
  recorded by the instrumented simulators;
- :func:`audit_record` — the invariants every record must satisfy, raising
  :class:`CycleAccountingError` with a precise message when one does not:

  1. every component is finite and non-negative;
  2. **exposure identity**: ``exposed_dma_cycles`` equals
     ``max(0, cycles - compute_cycles / arrays)`` *bit-exactly* — the same
     expression every executor uses, so any re-derivation drift fails loudly;
  3. the array cannot be busier than the makespan allows:
     ``compute_cycles <= arrays * cycles`` (tiny relative tolerance for the
     differently-associated float sums);
  4. work implies time: ``macs > 0`` forces ``cycles > 0``;
  5. utilization stays within ``[0, 1]``.

- :class:`MetricsRegistry` — accumulates records, audits on entry, and
  cross-checks **cache coherence**: two records under the same memo key
  (one miss, one hit) must carry identical numbers, so a stale or corrupted
  cache entry is caught the moment it is served.

Everything is inert unless tracing is enabled — the module-level
:func:`record_layer` / :func:`record_kernel` helpers return immediately
otherwise, keeping the simulators' hot paths free of bookkeeping.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Tuple

from .tracer import enabled as _tracing
from .tracer import get_tracer

__all__ = [
    "CycleAccountingError",
    "LayerCycleRecord",
    "KernelTimeRecord",
    "audit_record",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "record_layer",
    "record_kernel",
]

#: Relative slack for inequality audits only (sums associated differently by
#: the reference and vectorized executors).  Identities are checked exactly.
_REL_TOL = 1e-9


class CycleAccountingError(AssertionError):
    """A cycle-accounting invariant was violated."""


@dataclasses.dataclass(frozen=True)
class LayerCycleRecord:
    """One layer's (or GEMM primitive's) cycle breakdown.

    ``arrays`` is the number of MXUs the compute-busy cycles are spread over
    (1 everywhere except the dual-MXU design study); ``key`` identifies the
    memo entry the result came from, enabling the hit-vs-miss coherence
    audit.
    """

    source: str
    name: str
    cycles: float
    compute_cycles: float
    dma_cycles: float
    exposed_dma_cycles: float
    macs: int
    utilization: float = 0.0
    group_size: int = 1
    arrays: int = 1
    key: Optional[Tuple] = None

    def identity(self) -> Tuple:
        """The fields two records sharing a memo key must agree on.

        The label is excluded on purpose: the cache re-labels shared entries
        (``spec_key`` drops ``ConvSpec.name``), and that is legal — only the
        numbers must match.
        """
        return (
            self.cycles,
            self.compute_cycles,
            self.dma_cycles,
            self.exposed_dma_cycles,
            self.macs,
            self.group_size,
            self.arrays,
        )


@dataclasses.dataclass(frozen=True)
class KernelTimeRecord:
    """One GPU kernel timing (the tensor-core models account in seconds)."""

    source: str
    name: str
    seconds: float
    tflops: float


def audit_record(record: LayerCycleRecord) -> None:
    """Raise :class:`CycleAccountingError` unless every invariant holds."""
    numeric = {
        "cycles": record.cycles,
        "compute_cycles": record.compute_cycles,
        "dma_cycles": record.dma_cycles,
        "exposed_dma_cycles": record.exposed_dma_cycles,
    }
    for field, value in numeric.items():
        if not math.isfinite(value):
            raise CycleAccountingError(
                f"{record.source}:{record.name}: {field} is not finite ({value})"
            )
        if value < 0:
            raise CycleAccountingError(
                f"{record.source}:{record.name}: {field} is negative ({value})"
            )
    if record.macs < 0:
        raise CycleAccountingError(
            f"{record.source}:{record.name}: negative MAC count {record.macs}"
        )
    if record.arrays < 1:
        raise CycleAccountingError(
            f"{record.source}:{record.name}: arrays must be >= 1, got {record.arrays}"
        )
    if record.macs > 0 and record.cycles <= 0:
        raise CycleAccountingError(
            f"{record.source}:{record.name}: {record.macs} MACs took "
            f"{record.cycles} cycles — work must cost time"
        )
    # The exposure identity, evaluated with the exact expression every
    # executor uses so the comparison is bit-for-bit.
    expected_exposed = max(0.0, record.cycles - record.compute_cycles / record.arrays)
    if record.exposed_dma_cycles != expected_exposed:
        raise CycleAccountingError(
            f"{record.source}:{record.name}: exposure identity broken — "
            f"exposed_dma_cycles={record.exposed_dma_cycles!r} but "
            f"max(0, cycles - compute/arrays)={expected_exposed!r}"
        )
    if record.compute_cycles > record.arrays * record.cycles * (1 + _REL_TOL):
        raise CycleAccountingError(
            f"{record.source}:{record.name}: compute_cycles "
            f"{record.compute_cycles} exceeds {record.arrays} array(s) x "
            f"cycles {record.cycles}"
        )
    if not (0.0 <= record.utilization <= 1 + _REL_TOL):
        raise CycleAccountingError(
            f"{record.source}:{record.name}: utilization {record.utilization} "
            f"outside [0, 1]"
        )


class MetricsRegistry:
    """Accumulates audited records and cross-checks cache coherence."""

    __slots__ = ("_layers", "_kernels", "_by_key")

    def __init__(self) -> None:
        self._layers: List[LayerCycleRecord] = []
        self._kernels: List[KernelTimeRecord] = []
        self._by_key: Dict[Tuple, LayerCycleRecord] = {}

    # ---------------------------------------------------------------- record
    def record_layer(self, record: LayerCycleRecord) -> None:
        audit_record(record)
        if record.key is not None:
            first = self._by_key.get(record.key)
            if first is None:
                self._by_key[record.key] = record
            elif first.identity() != record.identity():
                raise CycleAccountingError(
                    f"cache coherence broken for {record.source}:{record.name}: "
                    f"hit returned {record.identity()} but the original "
                    f"computation recorded {first.identity()}"
                )
        self._layers.append(record)

    def record_kernel(self, record: KernelTimeRecord) -> None:
        if not math.isfinite(record.seconds) or record.seconds < 0:
            raise CycleAccountingError(
                f"{record.source}:{record.name}: kernel seconds must be finite "
                f"and non-negative, got {record.seconds}"
            )
        if record.tflops < 0:
            raise CycleAccountingError(
                f"{record.source}:{record.name}: negative TFLOPS {record.tflops}"
            )
        self._kernels.append(record)

    def merge(self, layers, kernels=()) -> None:
        """Fold records shipped back from a worker process into this registry."""
        for record in layers:
            self.record_layer(record)
        for record in kernels:
            self.record_kernel(record)

    # -------------------------------------------------------------- accessors
    @property
    def layers(self) -> List[LayerCycleRecord]:
        return list(self._layers)

    @property
    def kernels(self) -> List[KernelTimeRecord]:
        return list(self._kernels)

    def __len__(self) -> int:
        return len(self._layers) + len(self._kernels)

    def clear(self) -> None:
        self._layers.clear()
        self._kernels.clear()
        self._by_key.clear()

    def audit(self) -> int:
        """Re-audit every stored layer record; returns how many were checked."""
        for record in self._layers:
            audit_record(record)
        return len(self._layers)

    def by_source(self) -> Dict[str, Dict[str, float]]:
        """Aggregate cycle accounting per instrumentation source."""
        out: Dict[str, Dict[str, float]] = {}
        for record in self._layers:
            agg = out.setdefault(
                record.source,
                {
                    "layers": 0,
                    "cycles": 0.0,
                    "array_cycles": 0.0,
                    "compute_cycles": 0.0,
                    "dma_cycles": 0.0,
                    "exposed_dma_cycles": 0.0,
                    "macs": 0,
                },
            )
            agg["layers"] += 1
            agg["cycles"] += record.cycles
            # Compute capacity: the makespan times how many arrays could have
            # been busy, so compute% stays <= 100 for the dual-MXU source.
            agg["array_cycles"] += record.arrays * record.cycles
            agg["compute_cycles"] += record.compute_cycles
            agg["dma_cycles"] += record.dma_cycles
            agg["exposed_dma_cycles"] += record.exposed_dma_cycles
            agg["macs"] += record.macs
        return out


#: Process-global registry behind the module-level helpers.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the global registry (tests); returns the previous one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous


def record_layer(
    source: str,
    result,
    key: Optional[Tuple] = None,
    arrays: int = 1,
) -> None:
    """Record a ``LayerResult``-shaped object; no-op unless tracing is on."""
    if not _tracing():
        return
    record = LayerCycleRecord(
        source=source,
        name=result.name,
        cycles=result.cycles,
        compute_cycles=result.compute_cycles,
        dma_cycles=result.dma_cycles,
        exposed_dma_cycles=result.exposed_dma_cycles,
        macs=result.macs,
        utilization=result.utilization,
        group_size=getattr(result, "group_size", 1),
        arrays=arrays,
        key=key,
    )
    _REGISTRY.record_layer(record)
    get_tracer().instant(
        f"{source}.layer",
        cat="metrics",
        layer=record.name,
        cycles=record.cycles,
        compute_cycles=record.compute_cycles,
        exposed_dma_cycles=record.exposed_dma_cycles,
    )


def record_kernel(source: str, name: str, seconds: float, tflops: float) -> None:
    """Record a GPU kernel timing; no-op unless tracing is on."""
    if not _tracing():
        return
    _REGISTRY.record_kernel(
        KernelTimeRecord(source=source, name=name, seconds=seconds, tflops=tflops)
    )
