"""Structured-event tracer: spans, instants and counters, off by default.

The simulators, memory models and harness are instrumented with calls like
``trace.span("tpu.conv.simulate", layer=name)`` and
``trace.counter("hbm.bytes", payload)``.  Tracing is **disabled by default**
and the disabled path is engineered to cost nothing measurable:

- ``span()`` returns one shared no-op context manager (:data:`NULL_SPAN`) —
  no object is allocated per call;
- ``counter()`` / ``instant()`` return before touching any state;
- hot loops additionally guard with :func:`enabled` so even the argument
  packing is skipped.

When enabled (``--trace`` on the runner, or :func:`enable` in code) every
event is appended to the active :class:`Tracer` with a wall-clock timestamp
in microseconds relative to the moment tracing was enabled.  Events map 1:1
onto the Chrome ``trace_event`` format (see :mod:`repro.trace.export`):
spans are complete (``"X"``) events, counters are ``"C"`` events carrying
the running total, instants are ``"i"`` events.

Model *cycles* ride along as span/counter ``args`` — the tracer never
conflates simulated cycles with host time; per-layer cycle accounting lives
in :mod:`repro.trace.metrics`.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Callable, Dict, List, Optional, Tuple

from . import context as _context

__all__ = [
    "TraceEvent",
    "Tracer",
    "NULL_SPAN",
    "get_tracer",
    "set_tracer",
    "enable",
    "disable",
    "enabled",
    "span",
    "instant",
    "counter",
    "drain_events",
]


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One Chrome-trace-compatible event.

    ``ts``/``dur`` are host microseconds relative to the tracer's epoch;
    simulated-cycle payloads travel in ``args`` (a sorted tuple of
    ``(key, value)`` pairs so events stay hashable and picklable — they
    cross process boundaries under ``--jobs N``).
    """

    name: str
    cat: str
    ph: str  # "X" complete span, "C" counter, "i" instant
    ts: float
    dur: float
    pid: int
    tid: int
    args: Tuple[Tuple[str, object], ...] = ()

    def to_chrome(self) -> dict:
        """The dict the Chrome ``trace_event`` JSON array stores."""
        event = {
            "name": self.name,
            "cat": self.cat,
            "ph": self.ph,
            "ts": self.ts,
            "pid": self.pid,
            "tid": self.tid,
            "args": dict(self.args),
        }
        if self.ph == "X":
            event["dur"] = self.dur
        if self.ph == "i":
            event["s"] = "t"  # thread-scoped instant
        return event


class _NullSpan:
    """The shared do-nothing context manager returned while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


#: Singleton no-op span — ``span(...) is NULL_SPAN`` whenever tracing is off,
#: which is also what the disabled-overhead property test asserts.
NULL_SPAN = _NullSpan()


class _Span:
    """An open span; appends one complete event when the ``with`` exits.

    While a :class:`~repro.trace.context.TraceContext` is active the span
    joins its tree: it either *adopts* the current context (operation
    roots, see :func:`repro.trace.context.activate_root`) or allocates a
    child node, makes that node current for its dynamic extent, and stamps
    ``trace_id``/``span_id``/``parent_span_id`` into the event args — the
    Chrome export and the JSONL logs reassemble the tree by those ids.
    """

    __slots__ = ("_tracer", "_name", "_cat", "_args", "_start", "_ctx", "_token")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: dict):
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args
        self._start = 0.0
        self._ctx = None
        self._token = None

    def __enter__(self) -> "_Span":
        self._tracer._depth += 1
        ctx = _context.current()
        if ctx is not None:
            if _context.consume_adopt():
                self._ctx = ctx  # this span IS the received context's node
            else:
                self._ctx = ctx.child()
                self._token = _context.attach(self._ctx)
        self._start = self._tracer._now_us()
        return self

    def __exit__(self, *exc) -> bool:
        tracer = self._tracer
        end = tracer._now_us()
        tracer._depth -= 1
        if self._ctx is not None:
            if self._token is not None:
                _context.detach(self._token)
            self._args.update(self._ctx.ids())
        tracer._append(
            TraceEvent(
                name=self._name,
                cat=self._cat,
                ph="X",
                ts=self._start,
                dur=max(0.0, end - self._start),
                pid=tracer.pid,
                tid=1,
                args=tuple(sorted(self._args.items())),
            )
        )
        return False

    def note(self, **args) -> None:
        """Attach extra args to the span after entry (e.g. computed cycles)."""
        self._args.update(args)


class Tracer:
    """Collects :class:`TraceEvent` instances while enabled.

    One process-global instance (:func:`get_tracer`) backs the module-level
    helpers; tests may build private instances.  Not thread-safe by design —
    the harness parallelises across *processes*, each of which owns its own
    tracer, and events are merged by pid afterwards.
    """

    __slots__ = ("enabled", "pid", "_events", "_counters", "_depth", "_epoch", "tap")

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.pid = os.getpid()
        self._events: List[TraceEvent] = []
        self._counters: Dict[str, float] = {}
        self._depth = 0
        self._epoch = time.perf_counter()
        #: Optional event tee (the flight recorder's ring buffer taps here).
        self.tap: Optional[Callable[[TraceEvent], None]] = None

    # ------------------------------------------------------------- lifecycle
    def enable(self) -> None:
        self.enabled = True
        self.pid = os.getpid()  # re-stamp after fork into a worker
        self._epoch = time.perf_counter()

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self._events.clear()
        self._counters.clear()
        self._depth = 0
        self._epoch = time.perf_counter()

    # --------------------------------------------------------------- emitters
    def span(self, name: str, cat: str = "sim", **args):
        """A context manager timing one named region (``"X"`` event)."""
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, cat, args)

    def instant(self, name: str, cat: str = "sim", **args) -> None:
        """A zero-duration marker (``"i"`` event).

        Attributed to the enclosing span's trace context when one is
        active (the instant carries the *current* span's ids, so tree
        reassembly can hang it off the right node).
        """
        if not self.enabled:
            return
        ctx = _context.current()
        if ctx is not None:
            args.setdefault("trace_id", ctx.trace_id)
            args.setdefault("span_id", ctx.span_id)
        self._append(
            TraceEvent(
                name=name,
                cat=cat,
                ph="i",
                ts=self._now_us(),
                dur=0.0,
                pid=self.pid,
                tid=1,
                args=tuple(sorted(args.items())),
            )
        )

    def counter(self, name: str, value: float, cat: str = "counter") -> None:
        """Accumulate a non-negative increment onto a named counter.

        Negative increments are rejected: every instrumented quantity
        (bytes moved, transfers priced, schedules built) is a count, and the
        monotonicity is one of the audited trace invariants.
        """
        if not self.enabled:
            return
        if value < 0:
            raise ValueError(f"counter {name!r} increment must be >= 0, got {value}")
        total = self._counters.get(name, 0.0) + value
        self._counters[name] = total
        self._append(
            TraceEvent(
                name=name,
                cat=cat,
                ph="C",
                ts=self._now_us(),
                dur=0.0,
                pid=self.pid,
                tid=1,
                args=((name, total),),
            )
        )

    # -------------------------------------------------------------- accessors
    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    @property
    def counters(self) -> Dict[str, float]:
        """Final running totals per counter name."""
        return dict(self._counters)

    @property
    def open_spans(self) -> int:
        """Currently-open span depth (0 once every ``with`` has exited)."""
        return self._depth

    def drain(self) -> List[TraceEvent]:
        """Return all events and reset the buffer (workers ship these home)."""
        events = list(self._events)
        self._events.clear()
        return events

    # -------------------------------------------------------------- internals
    def _now_us(self) -> float:
        return (time.perf_counter() - self._epoch) * 1e6

    def _append(self, event: TraceEvent) -> None:
        self._events.append(event)
        if self.tap is not None:
            self.tap(event)


#: The process-global tracer behind the module-level helpers.
_TRACER = Tracer(enabled=False)


def get_tracer() -> Tracer:
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the global tracer (tests); returns the previous one."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


def enable() -> None:
    """Turn on event collection (and reset the timestamp epoch)."""
    _TRACER.enable()


def disable() -> None:
    _TRACER.disable()


def enabled() -> bool:
    """Fast guard for hot paths: skip even argument packing when off."""
    return _TRACER.enabled


def span(name: str, cat: str = "sim", **args):
    """Module-level ``with trace.span(...)``; no-op singleton when disabled."""
    tracer = _TRACER
    if not tracer.enabled:
        return NULL_SPAN
    return tracer.span(name, cat, **args)


def instant(name: str, cat: str = "sim", **args) -> None:
    tracer = _TRACER
    if tracer.enabled:
        tracer.instant(name, cat, **args)


def counter(name: str, value: float, cat: str = "counter") -> None:
    tracer = _TRACER
    if tracer.enabled:
        tracer.counter(name, value, cat)


def drain_events() -> List[TraceEvent]:
    return _TRACER.drain()
