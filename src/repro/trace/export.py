"""Trace export: Chrome ``trace_event`` JSON and the text summary report.

The JSON payload follows the Trace Event Format's "JSON object" flavour —
``{"traceEvents": [...], ...metadata}`` — and loads directly into
``chrome://tracing`` / Perfetto.  The text summary is what ``--trace``
prints to stdout after a run: span time by name, counter totals, and the
per-source cycle-accounting table from the :class:`MetricsRegistry`.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence

from .metrics import MetricsRegistry
from .tracer import TraceEvent

__all__ = [
    "chrome_trace_payload",
    "write_chrome_trace",
    "render_summary",
    "span_forest",
]


def span_forest(events: Iterable[TraceEvent]) -> Dict[str, dict]:
    """Reassemble trace-context span trees from exported events.

    Groups complete (``"X"``) events that carry ``trace_id``/``span_id``
    args (spans recorded while a :mod:`repro.trace.context` context was
    active) and, per trace, classifies each span:

    - a **root** has an empty/absent ``parent_span_id``;
    - an **orphan** names a parent span id that no span in the same trace
      owns — the signature of a broken propagation hop.

    Returns ``{trace_id: {"spans": {span_id: event}, "roots": [span_id],
    "orphans": [span_id]}}``.  A healthy cross-process operation shows up
    as one trace with exactly one root and zero orphans.
    """
    forest: Dict[str, dict] = {}
    for event in events:
        if event.ph != "X":
            continue
        args = dict(event.args)
        trace_id, span_id = args.get("trace_id"), args.get("span_id")
        if not trace_id or not span_id:
            continue
        tree = forest.setdefault(trace_id, {"spans": {}, "roots": [], "orphans": []})
        tree["spans"][span_id] = event
    for tree in forest.values():
        for span_id, event in tree["spans"].items():
            parent = dict(event.args).get("parent_span_id", "")
            if not parent:
                tree["roots"].append(span_id)
            elif parent not in tree["spans"]:
                tree["orphans"].append(span_id)
    return forest


def chrome_trace_payload(
    events: Sequence[TraceEvent], metadata: Optional[dict] = None
) -> dict:
    """The Chrome-loadable dict for a sequence of events.

    Events are ordered by ``(pid, tid, ts)`` so merged multi-process traces
    (``--jobs N``) stay deterministic regardless of worker completion order.
    """
    ordered = sorted(events, key=lambda e: (e.pid, e.tid, e.ts, e.name))
    payload = {
        "traceEvents": [event.to_chrome() for event in ordered],
        "displayTimeUnit": "ms",
    }
    if metadata:
        payload["otherData"] = dict(metadata)
    return payload


def write_chrome_trace(
    path: str, events: Sequence[TraceEvent], metadata: Optional[dict] = None
) -> str:
    """Write the Chrome trace JSON; returns the path written."""
    with open(path, "w") as handle:
        json.dump(chrome_trace_payload(events, metadata), handle, indent=1)
        handle.write("\n")
    return path


def _span_rollup(events: Iterable[TraceEvent]) -> Dict[str, List[float]]:
    """name -> [count, total_us] over complete ("X") events."""
    rollup: Dict[str, List[float]] = {}
    for event in events:
        if event.ph != "X":
            continue
        entry = rollup.setdefault(event.name, [0, 0.0])
        entry[0] += 1
        entry[1] += event.dur
    return rollup


def _counter_rollup(events: Iterable[TraceEvent]) -> Dict[str, float]:
    """name -> final running total over counter ("C") events.

    Counter events carry *running totals* per tracer window, so the final
    value per ``(pid, tid, name)`` track is that window's total; across
    tracks (the runner re-tags each experiment's events onto its own tid,
    and ``--jobs N`` merges worker pids) the totals add.
    """
    per_pid: Dict[tuple, float] = {}
    for event in events:
        if event.ph != "C":
            continue
        for key, value in event.args:
            slot = (event.pid, event.tid, key)
            per_pid[slot] = max(per_pid.get(slot, 0.0), float(value))
    totals: Dict[str, float] = {}
    for (_, _, key), value in per_pid.items():
        totals[key] = totals.get(key, 0.0) + value
    return totals


def render_summary(
    events: Sequence[TraceEvent], registry: Optional[MetricsRegistry] = None
) -> str:
    """The ``--trace`` text report: spans, counters, cycle accounting."""
    lines: List[str] = ["== trace summary =="]

    spans = _span_rollup(events)
    if spans:
        lines.append("")
        lines.append(f"{'span':<40} {'count':>7} {'total ms':>10}")
        for name in sorted(spans, key=lambda n: -spans[n][1]):
            count, total_us = spans[name]
            lines.append(f"{name:<40} {int(count):>7} {total_us / 1e3:>10.2f}")

    counters = _counter_rollup(events)
    if counters:
        lines.append("")
        lines.append(f"{'counter':<40} {'total':>14}")
        for name in sorted(counters):
            lines.append(f"{name:<40} {counters[name]:>14,.0f}")

    if registry is not None and registry.layers:
        lines.append("")
        lines.append(
            f"{'source':<16} {'layers':>6} {'cycles':>15} {'compute%':>9} "
            f"{'exposed%':>9} {'dma':>15}"
        )
        for source, agg in sorted(registry.by_source().items()):
            cycles = agg["cycles"] or 1.0
            capacity = agg["array_cycles"] or 1.0
            lines.append(
                f"{source:<16} {int(agg['layers']):>6} {agg['cycles']:>15,.0f} "
                f"{100 * agg['compute_cycles'] / capacity:>8.1f}% "
                f"{100 * agg['exposed_dma_cycles'] / cycles:>8.1f}% "
                f"{agg['dma_cycles']:>15,.0f}"
            )
        checked = registry.audit()
        lines.append("")
        lines.append(
            f"cycle-accounting audit: {checked} layer records checked, all invariants hold"
        )
    return "\n".join(lines)
