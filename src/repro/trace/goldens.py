"""Golden-snapshot cycle accounting for every figure experiment's workloads.

The exported ``results/`` directory freezes the harness's *rendered* output;
this module freezes something sharper: the **per-layer cycle breakdown**
(total / compute / DMA / exposed-DMA / MACs / multi-tile group) of every
workload each paper figure sweeps, at full float precision.  A perf refactor
that keeps totals but silently shifts attribution between compute and
exposed DMA — exactly the failure mode a vectorized-executor rewrite can
introduce — fails the golden tests even when every figure still renders the
same.

Layout:

- :data:`GOLDEN_EXPERIMENTS` — the figure/table ids with a golden set;
- :func:`compute_golden` — recompute one experiment's payload from scratch
  (every entry is a pure function of frozen configs/specs, so payloads are
  bit-deterministic across processes — the ``--jobs N`` regression test
  round-trips them through a worker pool);
- :func:`diff_payloads` — field-precise comparison for test failure output;
- ``tools/gen_goldens.py`` writes the JSON files under
  ``tests/trace/goldens/`` (``make goldens``), and
  ``tests/trace/test_goldens.py`` re-derives and compares them bit-exactly.

Floats survive the JSON round-trip exactly: ``json`` serialises via
``repr``, which is the shortest digit string that round-trips a binary64.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Callable, Dict, List

from ..core.conv_spec import ConvSpec, GemmShape
from ..core.layouts import Layout
from ..gpu.channel_first import channel_first_conv_time
from ..gpu.config import V100
from ..gpu.cudnn_model import cudnn_conv_time
from ..systolic.config import TPU_V2, TPUConfig
from ..systolic.scheduler import ifmap_rows_per_block
from ..systolic.simulator import TPUSim
from ..workloads.networks import network, network_names
from ..workloads.synthetic import (
    conv_validation_layers,
    fig4_layers,
    fig14_layer,
    gemm_sweep,
    memory_bound_layers,
    small_channel_sweep,
    strided_layers,
)
from .metrics import LayerCycleRecord, audit_record

__all__ = [
    "GOLDEN_SCHEMA",
    "GOLDEN_EXPERIMENTS",
    "compute_golden",
    "compute_all_goldens",
    "diff_payloads",
    "golden_filename",
]

GOLDEN_SCHEMA = 1


# --------------------------------------------------------------------------
# Entry builders
# --------------------------------------------------------------------------


def _audit(source: str, result, arrays: int = 1) -> None:
    """Goldens are generated through the same invariant gate traced runs use."""
    audit_record(
        LayerCycleRecord(
            source=source,
            name=result.name,
            cycles=result.cycles,
            compute_cycles=result.compute_cycles,
            dma_cycles=result.dma_cycles,
            exposed_dma_cycles=result.exposed_dma_cycles,
            macs=result.macs,
            utilization=result.utilization,
            group_size=result.group_size,
            arrays=arrays,
        )
    )


def _conv_entry(sim: TPUSim, spec: ConvSpec, config_tag: str = "tpu_v2", **kwargs) -> dict:
    result = sim.simulate_conv(spec, **kwargs)
    _audit("golden.conv", result)
    return {
        "kind": "tpu-conv",
        "config": config_tag,
        "workload": result.name,
        "cycles": result.cycles,
        "compute_cycles": result.compute_cycles,
        "dma_cycles": result.dma_cycles,
        "exposed_dma_cycles": result.exposed_dma_cycles,
        "macs": result.macs,
        "group_size": result.group_size,
    }


def _gemm_entry(sim: TPUSim, shape: GemmShape, config_tag: str = "tpu_v2") -> dict:
    result = sim.simulate_gemm(shape, name=f"gemm.{shape.m}x{shape.k}x{shape.n}")
    _audit("golden.gemm", result)
    return {
        "kind": "tpu-gemm",
        "config": config_tag,
        "workload": result.name,
        "cycles": result.cycles,
        "compute_cycles": result.compute_cycles,
        "dma_cycles": result.dma_cycles,
        "exposed_dma_cycles": result.exposed_dma_cycles,
        "macs": result.macs,
        "group_size": result.group_size,
    }


def _fill_entries(sim: TPUSim, spec: ConvSpec) -> List[dict]:
    """Fig 7's unit of account: one IFMap block fill per DRAM layout."""
    rows = ifmap_rows_per_block(spec, sim.config, group_size=1)
    entries = []
    for layout in (Layout.NHWC, Layout.NCHW):
        cycles = sim.engine.ifmap_tile_fill_cycles(spec, rows, 1, layout=layout)
        entries.append(
            {
                "kind": "ifmap-fill",
                "config": "tpu_v2",
                "workload": f"{spec.name}:{layout.value}",
                "rows": rows,
                "cycles": cycles,
            }
        )
    return entries


def _gpu_entries(spec: ConvSpec) -> List[dict]:
    """Fig 17/18's unit of account: our kernel vs. the cuDNN stand-in."""
    ours = channel_first_conv_time(spec, V100)
    cudnn = cudnn_conv_time(spec, V100)
    return [
        {
            "kind": "gpu-channel-first",
            "config": "v100",
            "workload": spec.name,
            "seconds": ours.seconds,
            "tflops": ours.tflops,
        },
        {
            "kind": "gpu-cudnn",
            "config": "v100",
            "workload": spec.name,
            "seconds": cudnn.seconds,
            "tflops": cudnn.tflops,
        },
    ]


# --------------------------------------------------------------------------
# Per-experiment workload sets (mirroring each figure's sweep)
# --------------------------------------------------------------------------


def _golden_fig2() -> List[dict]:
    """Batch-64 motivation networks (the TPU side of Fig 2b)."""
    sim = TPUSim()
    return [
        _conv_entry(sim, layer)
        for name in network_names()
        for layer in network(name, 64)
    ]


def _golden_fig4() -> List[dict]:
    """Representative ResNet layers at strides 1/2/4, conv and GEMM series."""
    sim = TPUSim()
    entries = []
    for layer in fig4_layers(batch=64):
        for stride in (1, 2, 4):
            spec = layer.with_stride(stride)
            entries.append(_conv_entry(sim, spec))
            entries.append(_gemm_entry(sim, spec.gemm_shape()))
    return entries


def _golden_fig7() -> List[dict]:
    """Tile-fill cost per DRAM layout over the validation conv layers."""
    sim = TPUSim()
    entries = []
    for spec in conv_validation_layers(batch=8):
        entries.extend(_fill_entries(sim, spec))
    return entries


def _golden_fig13() -> List[dict]:
    """The GEMM sweep grid and the no-multi-tile CONV validation layers."""
    sim = TPUSim()
    entries = [_gemm_entry(sim, shape) for shape in gemm_sweep()]
    entries += [_conv_entry(sim, spec) for spec in conv_validation_layers(batch=8)]
    return entries


def _golden_fig14() -> List[dict]:
    """Multi-tile study: explicit group sizes plus the small-channel sweep."""
    sim = TPUSim()
    study = fig14_layer(batch=8)
    entries = [
        _conv_entry(sim, study, group_size=g) for g in range(1, study.h_filter * study.w_filter + 1)
    ]
    entries += [_conv_entry(sim, spec) for spec in small_channel_sweep(batch=8)]
    return entries


def _golden_fig15() -> List[dict]:
    """Every conv layer of every benchmark network, batch 8."""
    sim = TPUSim()
    return [
        _conv_entry(sim, layer)
        for name in network_names()
        for layer in network(name, 8)
    ]


def _golden_fig16() -> List[dict]:
    """VGG16 under the array-size design sweep."""
    entries = []
    for size in (64, 128, 256):
        sim = TPUSim(TPU_V2.with_array(size))
        entries += [
            _conv_entry(sim, layer, config_tag=f"tpu_v2.array{size}")
            for layer in network("VGG16", 8)
        ]
    return entries


def _golden_fig17() -> List[dict]:
    """Our GPU kernel vs. the cuDNN stand-in over the benchmark networks."""
    entries = []
    for name in network_names():
        for layer in network(name, 8):
            entries.extend(_gpu_entries(layer))
    return entries


def _golden_fig18() -> List[dict]:
    """Strided and memory-bound layer selections, TPU and GPU accounts."""
    sim = TPUSim()
    entries = []
    for spec in strided_layers(batch=8) + memory_bound_layers(batch=8):
        entries.append(_conv_entry(sim, spec))
        entries.extend(_gpu_entries(spec))
    return entries


def _golden_table1() -> List[dict]:
    """Batch-1 fp16 network latencies decomposed per layer."""
    sim = TPUSim()
    return [
        _conv_entry(sim, layer)
        for name in network_names()
        for layer in network(name, 1)
    ]


_BUILDERS: Dict[str, Callable[[], List[dict]]] = {
    "fig2": _golden_fig2,
    "fig4": _golden_fig4,
    "fig7": _golden_fig7,
    "fig13": _golden_fig13,
    "fig14": _golden_fig14,
    "fig15": _golden_fig15,
    "fig16": _golden_fig16,
    "fig17": _golden_fig17,
    "fig18": _golden_fig18,
    "table1": _golden_table1,
}

GOLDEN_EXPERIMENTS = tuple(_BUILDERS)


# --------------------------------------------------------------------------
# Payloads and comparison
# --------------------------------------------------------------------------


def compute_golden(experiment_id: str) -> dict:
    """Recompute one experiment's golden payload from scratch."""
    try:
        builder = _BUILDERS[experiment_id]
    except KeyError:
        raise KeyError(
            f"no golden set for {experiment_id!r}; known: {sorted(_BUILDERS)}"
        ) from None
    return {
        "schema": GOLDEN_SCHEMA,
        "experiment": experiment_id,
        "entries": builder(),
    }


def compute_all_goldens() -> Dict[str, dict]:
    return {eid: compute_golden(eid) for eid in GOLDEN_EXPERIMENTS}


def golden_filename(experiment_id: str) -> str:
    return f"{experiment_id}.json"


def diff_payloads(expected: dict, actual: dict) -> List[str]:
    """Human-readable field-level differences (empty list == bit-identical).

    Compares through a canonical JSON round-trip so a payload loaded from
    disk and one computed in memory are held to exactly the representable
    values the file stores.
    """
    expected = json.loads(json.dumps(expected))
    actual = json.loads(json.dumps(actual))
    diffs: List[str] = []
    if expected.get("schema") != actual.get("schema"):
        diffs.append(
            f"schema: {expected.get('schema')} != {actual.get('schema')}"
        )
    left, right = expected.get("entries", []), actual.get("entries", [])
    if len(left) != len(right):
        diffs.append(f"entry count: {len(left)} != {len(right)}")
    for i, (a, b) in enumerate(zip(left, right)):
        if a == b:
            continue
        label = a.get("workload", f"entry[{i}]")
        for field in sorted(set(a) | set(b)):
            if a.get(field) != b.get(field):
                diffs.append(
                    f"{label} [{a.get('kind', '?')}] {field}: "
                    f"{a.get(field)!r} != {b.get(field)!r}"
                )
    return diffs
