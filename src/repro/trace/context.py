"""W3C-style trace context: one identity per request/task, everywhere it goes.

A :class:`TraceContext` is the ``(trace_id, span_id, parent_span_id)``
triple the W3C Trace Context spec carries in a ``traceparent`` header
(``00-<32 hex>-<16 hex>-01``).  The repo's tracer (:mod:`repro.trace.tracer`)
stamps those ids onto every span/instant it records while a context is
active, so one logical operation — an HTTP query into ``repro serve``, one
experiment of a ``--jobs N`` sweep — yields a *connected span tree* in the
Chrome export and in the JSONL logs, across process boundaries.

Propagation surfaces:

- **in-process**: a :mod:`contextvars` variable, so concurrent asyncio
  requests in the serve daemon each see their own context and worker
  threads can adopt one explicitly (:func:`activate`);
- **HTTP**: ``traceparent`` request headers are parsed by the serve
  daemon; responses echo the trace id in ``X-Repro-Trace-Id``;
- **cross-process**: the harness threads a ``traceparent`` string through
  the supervisor task payload (and :data:`TRACEPARENT_ENV` for processes
  spawned outside the supervisor, e.g. ``repro serve`` behind a gateway),
  so pool workers parent their spans under the run's root.

Everything here is allocation-light and pure stdlib; with tracing disabled
none of it is consulted on the simulators' hot paths.
"""

from __future__ import annotations

import contextlib
import contextvars
import dataclasses
import os
import re
from typing import Dict, Iterator, Optional

__all__ = [
    "TraceContext",
    "TRACEPARENT_ENV",
    "current",
    "attach",
    "detach",
    "activate",
    "activate_root",
    "consume_adopt",
    "from_env",
    "to_env",
]

#: Environment variable carrying a ``traceparent`` across process spawns.
TRACEPARENT_ENV = "REPRO_TRACEPARENT"

_TRACEPARENT_RE = re.compile(
    r"^([0-9a-f]{2})-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$"
)


def _hex_id(nbytes: int) -> str:
    """A random lowercase-hex id (``os.urandom`` — no global RNG state)."""
    return os.urandom(nbytes).hex()


@dataclasses.dataclass(frozen=True)
class TraceContext:
    """One node of a distributed span tree.

    ``trace_id`` names the whole tree (one per request/task);
    ``span_id`` names this node; ``parent_span_id`` is empty on roots.
    """

    trace_id: str
    span_id: str
    parent_span_id: str = ""

    @classmethod
    def new(cls) -> "TraceContext":
        """A fresh root context (new trace, no parent)."""
        return cls(trace_id=_hex_id(16), span_id=_hex_id(8))

    def child(self) -> "TraceContext":
        """A child node: same trace, fresh span id, parented here."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=_hex_id(8),
            parent_span_id=self.span_id,
        )

    # ------------------------------------------------------------- wire formats
    def to_traceparent(self) -> str:
        """The W3C ``traceparent`` header value for this node."""
        return f"00-{self.trace_id}-{self.span_id}-01"

    @classmethod
    def from_traceparent(cls, header: Optional[str]) -> Optional["TraceContext"]:
        """Parse a ``traceparent`` header; ``None`` on anything malformed.

        The sender's ``span_id`` becomes this context's span id, so the
        receiver's first span parents under the sender — exactly the W3C
        parent/child handoff.
        """
        if not header:
            return None
        match = _TRACEPARENT_RE.match(header.strip().lower())
        if match is None:
            return None
        _, trace_id, span_id, _ = match.groups()
        if trace_id == "0" * 32 or span_id == "0" * 16:
            return None  # the spec's invalid all-zero ids
        return cls(trace_id=trace_id, span_id=span_id)

    def ids(self) -> Dict[str, str]:
        """The id fields as span/log args (parent omitted when empty)."""
        out = {"trace_id": self.trace_id, "span_id": self.span_id}
        if self.parent_span_id:
            out["parent_span_id"] = self.parent_span_id
        return out


# ---------------------------------------------------------------------------
# The in-process current context (contextvars: asyncio- and thread-correct)
# ---------------------------------------------------------------------------

_CURRENT: contextvars.ContextVar[Optional[TraceContext]] = contextvars.ContextVar(
    "repro_trace_context", default=None
)
#: When set, the next span opened *adopts* the current context (becomes the
#: tree's root node) instead of allocating a child — this is how a context
#: received over a process/HTTP boundary becomes the root span of the
#: receiving side's subtree.
_ADOPT: contextvars.ContextVar[bool] = contextvars.ContextVar(
    "repro_trace_adopt", default=False
)


def current() -> Optional[TraceContext]:
    return _CURRENT.get()


def attach(ctx: Optional[TraceContext]) -> contextvars.Token:
    """Make ``ctx`` current; returns a token for :func:`detach`."""
    return _CURRENT.set(ctx)


def detach(token: contextvars.Token) -> None:
    _CURRENT.reset(token)


@contextlib.contextmanager
def activate(ctx: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """``with activate(ctx): ...`` — scoped current-context swap."""
    token = _CURRENT.set(ctx)
    try:
        yield ctx
    finally:
        _CURRENT.reset(token)


@contextlib.contextmanager
def activate_root(ctx: TraceContext) -> Iterator[TraceContext]:
    """Activate ``ctx`` and let the next span *become* it.

    Used at operation entry points (HTTP handler, supervised task body):
    the first span opened inside the block records with ``ctx``'s own
    ``span_id`` — it is the root of this side's subtree — and later spans
    nest beneath it as usual.
    """
    token = _CURRENT.set(ctx)
    adopt_token = _ADOPT.set(True)
    try:
        yield ctx
    finally:
        _ADOPT.reset(adopt_token)
        _CURRENT.reset(token)


def consume_adopt() -> bool:
    """True exactly once after :func:`activate_root` (tracer internal)."""
    if _ADOPT.get():
        _ADOPT.set(False)
        return True
    return False


# ---------------------------------------------------------------------------
# Environment propagation (processes spawned outside the supervisor payload)
# ---------------------------------------------------------------------------


def to_env(ctx: TraceContext, environ: Optional[dict] = None) -> dict:
    """Export ``ctx`` as :data:`TRACEPARENT_ENV` (defaults to ``os.environ``)."""
    target = os.environ if environ is None else environ
    target[TRACEPARENT_ENV] = ctx.to_traceparent()
    return target


def from_env(environ: Optional[dict] = None) -> Optional[TraceContext]:
    """The context exported by a parent process, if any."""
    source = os.environ if environ is None else environ
    return TraceContext.from_traceparent(source.get(TRACEPARENT_ENV))
