"""Cycle-accounting observability: tracing, metrics audits, golden snapshots.

Five pieces, layered so the simulators pay nothing unless a run opts in:

- :mod:`repro.trace.tracer` — structured spans/instants/counters with a
  zero-overhead disabled path (the instrumented modules call straight into
  it);
- :mod:`repro.trace.context` — W3C-style trace-context propagation
  (``trace_id``/``span_id``/``traceparent``) so one request or sweep task
  yields a connected span tree across threads and processes;
- :mod:`repro.trace.metrics` — per-layer cycle-accounting records with
  invariant audits (exposure identity, cache coherence, utilization bounds);
- :mod:`repro.trace.export` — Chrome ``trace_event`` JSON and the ``--trace``
  text summary;
- :mod:`repro.trace.goldens` — bit-exact golden snapshots of every figure
  experiment's per-layer breakdowns (regenerate with ``make goldens``).

``goldens`` is deliberately **not** re-exported here: it imports the
simulators, and the simulators import this package for instrumentation —
import it explicitly as ``repro.trace.goldens``.

See DESIGN.md ("Cycle-accounting observability") for semantics.
"""

from .context import (
    TRACEPARENT_ENV,
    TraceContext,
    activate,
    activate_root,
    attach,
    current,
    detach,
)
from .tracer import (
    NULL_SPAN,
    TraceEvent,
    Tracer,
    counter,
    disable,
    drain_events,
    enable,
    enabled,
    get_tracer,
    instant,
    set_tracer,
    span,
)
from .metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    CycleAccountingError,
    Histogram,
    KernelTimeRecord,
    LayerCycleRecord,
    MetricsRegistry,
    audit_record,
    get_registry,
    record_kernel,
    record_layer,
    set_registry,
)
from .export import chrome_trace_payload, render_summary, span_forest, write_chrome_trace

__all__ = [
    "TRACEPARENT_ENV",
    "TraceContext",
    "activate",
    "activate_root",
    "attach",
    "current",
    "detach",
    "NULL_SPAN",
    "TraceEvent",
    "Tracer",
    "counter",
    "disable",
    "drain_events",
    "enable",
    "enabled",
    "get_tracer",
    "instant",
    "set_tracer",
    "span",
    "CycleAccountingError",
    "DEFAULT_LATENCY_BUCKETS_S",
    "Histogram",
    "KernelTimeRecord",
    "LayerCycleRecord",
    "MetricsRegistry",
    "audit_record",
    "get_registry",
    "record_kernel",
    "record_layer",
    "set_registry",
    "chrome_trace_payload",
    "render_summary",
    "span_forest",
    "write_chrome_trace",
]
