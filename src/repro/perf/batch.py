"""Cross-layer batched schedule engine: one pricing pass, one recurrence.

PR 1's :mod:`repro.perf.schedule_arrays` vectorized the two-resource
pipeline *within* a layer; after it, harness time is dominated by dispatch —
thousands of sub-100µs ``simulate_conv`` calls each rebuilding the same
tiny set of scalar costs and running the recurrence on its own short
arrays.  This module amortizes scheduling across a whole batch of layers
(the implicit-im2col move — amortize the lowering across the GEMM — applied
one level up):

- **Construction** (:func:`conv_schedule_batch` / :func:`gemm_schedule_batch`):
  each schedule's K×N chunk grid holds at most four distinct values per cost
  kind (full/tail chunk rows × full/tail chunk cols), so the grids are
  assembled with array writes instead of per-item Python loops, and one
  :class:`BatchPricer` memoizes every distinct scalar argument tuple *across
  the batch* — a weight-fill or occupancy priced for layer 3 is never
  re-priced for layer 40.
- **Execution** (:func:`execute_schedule_batch`): all schedules concatenate
  into one flat ragged batch with per-job segment offsets; cumulative sums
  run on a zero-padded 2-D view (adding ``0.0`` is a float identity, so the
  padded row-wise ``cumsum`` is bit-identical to each job's own), and the
  pipeline recurrence runs once over the flat arrays via
  :func:`~repro.perf.schedule_arrays.pipeline_free_times_segmented` with
  forced restarts at job boundaries.

**Bit-exactness to the per-layer path is a hard contract**: the same scalar
pricing functions are called with the same argument tuples, every array
element lands where the item scheduler would have emitted it, and every
reduction keeps the reference's left-to-right association.  The equivalence
tests (``tests/perf/test_batch.py``) gate this to the last float bit.

Audit note: scalar-cost sharing across specs means ``ifmap_tile_fill_cycles``
runs once per distinct feature tuple, not once per spec — the same
"verified once per key" policy the perf cache already applies.  Under
``--audit full`` the differential checker re-prices every layer through the
per-layer builders, so per-spec audit coverage is unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.conv_spec import ConvSpec, GemmShape
from ..core.layouts import Layout
from ..core.tiling import plan_multi_tile
from ..trace import tracer as trace
from ..systolic.config import TPUConfig
from ..systolic.dma import FillEngine
from ..systolic.scheduler import (
    MIN_BLOCK_ROWS,
    MIN_PIPELINE_BLOCKS,
    ScheduleResult,
    ifmap_rows_per_block,
    tile_occupancy_cycles,
)
# Module binding only: repro.perf.schedule_arrays imports the systolic
# package back (config -> __init__ -> simulator -> this module), so named
# imports here would see it partially initialized on one import order.
from . import schedule_arrays as _sa
from .cache import canonical_layout

__all__ = [
    "BatchPricer",
    "conv_schedule_batch",
    "gemm_schedule_batch",
    "execute_schedule_batch",
]

#: Flat padded-batch size (jobs × longest job) beyond which the executor
#: degrades to per-job execution instead of materialising the 2-D pad.
_MAX_PADDED_ELEMENTS = 64_000_000


class BatchPricer:
    """Scalar-cost and grid memoization shared across one batch.

    Every distinct argument tuple of each pricing function is evaluated
    exactly once per pricer, no matter how many layers in the batch need
    it.  All values come from the *same* scalar functions the per-layer
    builders call, so sharing cannot change a single bit.

    The IFMap-fill memo keys on exactly the features
    :meth:`~repro.systolic.dma.FillEngine.ifmap_tile_fill_cycles` reads —
    block rows, group size, batch, channels, stride, fill contiguity,
    output row width, IFMap spatial size and the layout *class* (NHWC/HWCN
    and NCHW/CHWN price identically) — so two different specs share an
    entry only when the engine would have returned the identical float.
    """

    def __init__(self, config: TPUConfig, engine: FillEngine):
        self.config = config
        self.engine = engine
        self._weight_fill: Dict[Tuple, float] = {}
        self._occupancy: Dict[Tuple, float] = {}
        self._drain: Dict[Tuple, float] = {}
        self._a_fill: Dict[Tuple, float] = {}
        self._ifmap_fill: Dict[Tuple, float] = {}
        self._conv_grids: Dict[Tuple, Tuple] = {}
        self._gemm_grids: Dict[Tuple, Tuple] = {}

    # ------------------------------------------------------------- scalars
    def weight_fill(self, k_t: int, n_t: int) -> float:
        key = (k_t, n_t)
        value = self._weight_fill.get(key)
        if value is None:
            value = self.engine.weight_fill_cycles(k_t, n_t)
            self._weight_fill[key] = value
        return value

    def occupancy(self, rows: int, k_t: int, n_t: int, first: bool = False) -> float:
        key = (rows, k_t, n_t, first)
        value = self._occupancy.get(key)
        if value is None:
            value = tile_occupancy_cycles(rows, k_t, n_t, self.config, first=first)
            self._occupancy[key] = value
        return value

    def drain(self, rows: int, n_t: int) -> float:
        key = (rows, n_t)
        value = self._drain.get(key)
        if value is None:
            value = self.engine.ofmap_drain_cycles(rows, n_t)
            self._drain[key] = value
        return value

    def a_fill(self, rows: int, k_t: int) -> float:
        key = (rows, k_t)
        value = self._a_fill.get(key)
        if value is None:
            value = self.engine.gemm_a_fill_cycles(rows, k_t)
            self._a_fill[key] = value
        return value

    def ifmap_fill(
        self, spec: ConvSpec, rows: int, group_size: int, layout: Layout
    ) -> float:
        contiguous = spec.stride == 1 and spec.dilation == 1
        key = (
            rows,
            group_size,
            spec.n,
            spec.c_in,
            spec.stride,
            contiguous,
            spec.w_out,
            spec.h_in * spec.w_in,
            canonical_layout(layout),
        )
        value = self._ifmap_fill.get(key)
        if value is None:
            value = self.engine.ifmap_tile_fill_cycles(
                spec, rows, group_size, layout=layout
            )
            self._ifmap_fill[key] = value
        return value

    # --------------------------------------------------------------- grids
    def conv_grid(
        self, rows: int, merged_k: int, c_out: int, drains_here: bool
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Flat (fill, gemm, drain, macs) for one group's K×N chunk grid.

        The grid is row-major over K-chunks then N-chunks — exactly the
        item scheduler's loop order — and holds at most four distinct
        values per array (full/tail chunk on each axis), written as block
        assignments.  The IFMap fill is *not* included (it lands on the
        group's first flat element at assembly, after the shared grid is
        copied).  Cached arrays are immutable; callers must copy before
        mutating.
        """
        key = (rows, merged_k, c_out, drains_here)
        cached = self._conv_grids.get(key)
        if cached is not None:
            return cached
        ar, ac = self.config.array_rows, self.config.array_cols
        kc = -(-merged_k // ar)
        nc = -(-c_out // ac)
        kt_last = merged_k - (kc - 1) * ar
        nt_last = c_out - (nc - 1) * ac

        fill = np.empty((kc, nc), dtype=np.float64)
        gemm = np.empty((kc, nc), dtype=np.float64)
        if kc > 1 and nc > 1:
            fill[: kc - 1, : nc - 1] = self.weight_fill(ar, ac)
            gemm[: kc - 1, : nc - 1] = self.occupancy(rows, ar, ac)
        if kc > 1:
            fill[: kc - 1, nc - 1] = self.weight_fill(ar, nt_last)
            gemm[: kc - 1, nc - 1] = self.occupancy(rows, ar, nt_last)
        if nc > 1:
            fill[kc - 1, : nc - 1] = self.weight_fill(kt_last, ac)
            gemm[kc - 1, : nc - 1] = self.occupancy(rows, kt_last, ac)
        fill[kc - 1, nc - 1] = self.weight_fill(kt_last, nt_last)
        gemm[kc - 1, nc - 1] = self.occupancy(rows, kt_last, nt_last)

        drain = np.zeros((kc, nc), dtype=np.float64)
        if drains_here:
            if nc > 1:
                drain[kc - 1, : nc - 1] = self.drain(rows, ac)
            drain[kc - 1, nc - 1] = self.drain(rows, nt_last)

        kt = np.full(kc, ar, dtype=np.int64)
        kt[-1] = kt_last
        nt = np.full(nc, ac, dtype=np.int64)
        nt[-1] = nt_last
        macs = rows * np.multiply.outer(kt, nt)

        grids = (fill.reshape(-1), gemm.reshape(-1), drain.reshape(-1), macs.reshape(-1))
        for arr in grids:
            arr.flags.writeable = False
        self._conv_grids[key] = grids
        return grids

    def gemm_grid(
        self, rows: int, k: int, n: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Flat (fill, gemm, drain, macs) for one GEMM M-block's chunk grid.

        Unlike the conv grid, the A-panel fill *is* baked in (column 0 of
        every K-chunk row, ``weight + a_fill`` in the reference's add
        order) and so is the C drain (last K-chunk row) — both are
        functions of the key alone.
        """
        key = (rows, k, n)
        cached = self._gemm_grids.get(key)
        if cached is not None:
            return cached
        ar, ac = self.config.array_rows, self.config.array_cols
        kc = -(-k // ar)
        nc = -(-n // ac)
        kt_last = k - (kc - 1) * ar
        nt_last = n - (nc - 1) * ac

        fill = np.empty((kc, nc), dtype=np.float64)
        gemm = np.empty((kc, nc), dtype=np.float64)
        if kc > 1 and nc > 1:
            fill[: kc - 1, : nc - 1] = self.weight_fill(ar, ac)
            gemm[: kc - 1, : nc - 1] = self.occupancy(rows, ar, ac)
        if kc > 1:
            fill[: kc - 1, nc - 1] = self.weight_fill(ar, nt_last)
            gemm[: kc - 1, nc - 1] = self.occupancy(rows, ar, nt_last)
        if nc > 1:
            fill[kc - 1, : nc - 1] = self.weight_fill(kt_last, ac)
            gemm[kc - 1, : nc - 1] = self.occupancy(rows, kt_last, ac)
        fill[kc - 1, nc - 1] = self.weight_fill(kt_last, nt_last)
        gemm[kc - 1, nc - 1] = self.occupancy(rows, kt_last, nt_last)

        a_fill = np.empty(kc, dtype=np.float64)
        if kc > 1:
            a_fill[: kc - 1] = self.a_fill(rows, ar)
        a_fill[kc - 1] = self.a_fill(rows, kt_last)
        fill[:, 0] += a_fill  # same float add as the reference's weight + a_fill

        drain = np.zeros((kc, nc), dtype=np.float64)
        if nc > 1:
            drain[kc - 1, : nc - 1] = self.drain(rows, ac)
        drain[kc - 1, nc - 1] = self.drain(rows, nt_last)

        kt = np.full(kc, ar, dtype=np.int64)
        kt[-1] = kt_last
        nt = np.full(nc, ac, dtype=np.int64)
        nt[-1] = nt_last
        macs = rows * np.multiply.outer(kt, nt)

        grids = (fill.reshape(-1), gemm.reshape(-1), drain.reshape(-1), macs.reshape(-1))
        for arr in grids:
            arr.flags.writeable = False
        self._gemm_grids[key] = grids
        return grids


# --------------------------------------------------------------------------
# Batched construction
# --------------------------------------------------------------------------


def _conv_template(
    spec: ConvSpec,
    rows: int,
    groups: Sequence,
    pricer: BatchPricer,
    layout: Layout,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """One IFMap block's template: concatenated group grids + IFMap fills."""
    last_gi = len(groups) - 1
    parts_fill: List[np.ndarray] = []
    parts_gemm: List[np.ndarray] = []
    parts_drain: List[np.ndarray] = []
    parts_macs: List[np.ndarray] = []
    fill_positions: List[Tuple[int, float]] = []
    offset = 0
    for gi, group in enumerate(groups):
        g_fill, g_gemm, g_drain, g_macs = pricer.conv_grid(
            rows, group.merged_k, spec.c_out, gi == last_gi
        )
        parts_fill.append(g_fill)
        parts_gemm.append(g_gemm)
        parts_drain.append(g_drain)
        parts_macs.append(g_macs)
        fill_positions.append(
            (offset, pricer.ifmap_fill(spec, rows, group.group_size, layout))
        )
        offset += g_fill.size
    # np.concatenate always copies, so the shared grids stay pristine and
    # the IFMap-fill adds below mutate this template's own buffer.
    fill = np.concatenate(parts_fill)
    gemm = np.concatenate(parts_gemm)
    drain = np.concatenate(parts_drain)
    macs = np.concatenate(parts_macs)
    for pos, input_fill in fill_positions:
        fill[pos] += input_fill  # weight + input_fill, the reference's order
    return fill, gemm, drain, macs


def conv_schedule_batch(
    jobs: Sequence[Tuple[ConvSpec, int]],
    config: TPUConfig,
    engine: Optional[FillEngine] = None,
    layout: Layout = Layout.NHWC,
    pricer: Optional[BatchPricer] = None,
) -> List[_sa.ScheduleArrays]:
    """Array schedules for ``(spec, group_size)`` jobs with shared pricing.

    Bit-identical per job to
    :func:`~repro.perf.schedule_arrays.channel_first_schedule_arrays`.
    """
    engine = engine if engine is not None else FillEngine(config)
    if pricer is None:
        pricer = BatchPricer(config, engine)
    schedules: List[_sa.ScheduleArrays] = []
    for spec, group_size in jobs:
        _sa._CONSTRUCTION_COUNT += 1
        groups = plan_multi_tile(spec, group_size, row_aligned=True)
        m_total = spec.lowered_rows()
        m_block = ifmap_rows_per_block(spec, config, group_size)
        n_blocks = -(-m_total // m_block)
        rows_sequence = [m_block] * (n_blocks - 1) + [
            m_total - m_block * (n_blocks - 1)
        ]
        templates = {
            rows: _conv_template(spec, rows, groups, pricer, layout)
            for rows in set(rows_sequence)
        }
        schedule = _sa._assemble_blocks(templates, rows_sequence)
        if len(schedule) and groups:
            first_k = min(config.array_rows, groups[0].merged_k)
            first_n = min(config.array_cols, spec.c_out)
            schedule.gemm_cycles[0] = pricer.occupancy(
                rows_sequence[0], first_k, first_n, first=True
            )
        schedules.append(schedule)
    if trace.enabled():
        trace.counter("schedule.constructions", len(jobs), cat="schedule")
        trace.counter("schedule.batched_constructions", len(jobs), cat="schedule")
    return schedules


def gemm_schedule_batch(
    shapes: Sequence[GemmShape],
    config: TPUConfig,
    engine: Optional[FillEngine] = None,
    pricer: Optional[BatchPricer] = None,
) -> List[_sa.ScheduleArrays]:
    """Array schedules for GEMM shapes with shared pricing.

    Bit-identical per shape to
    :func:`~repro.perf.schedule_arrays.gemm_schedule_arrays`.
    """
    engine = engine if engine is not None else FillEngine(config)
    if pricer is None:
        pricer = BatchPricer(config, engine)
    array_rows = config.array_rows
    elem = config.compute_elem_bytes
    budget = config.unified_sram_bytes // 4
    schedules: List[_sa.ScheduleArrays] = []
    for shape in shapes:
        _sa._CONSTRUCTION_COUNT += 1
        k_first = min(array_rows, shape.k)
        k_max = array_rows if shape.k >= array_rows else shape.k
        per_row = k_max * elem
        capacity_rows = max(1, budget // per_row)
        pipeline_rows = max(MIN_BLOCK_ROWS, -(-shape.m // MIN_PIPELINE_BLOCKS))
        m_block = max(1, min(shape.m, capacity_rows, pipeline_rows))
        n_blocks = -(-shape.m // m_block)
        rows_sequence = [m_block] * (n_blocks - 1) + [
            shape.m - m_block * (n_blocks - 1)
        ]
        templates = {
            rows: pricer.gemm_grid(rows, shape.k, shape.n)
            for rows in set(rows_sequence)
        }
        schedule = _sa._assemble_blocks(templates, rows_sequence)
        if len(schedule):
            first_n = min(config.array_cols, shape.n)
            schedule.gemm_cycles[0] = pricer.occupancy(
                rows_sequence[0], k_first, first_n, first=True
            )
        schedules.append(schedule)
    if trace.enabled():
        trace.counter("schedule.constructions", len(shapes), cat="schedule")
        trace.counter("schedule.batched_constructions", len(shapes), cat="schedule")
    return schedules


# --------------------------------------------------------------------------
# Batched execution
# --------------------------------------------------------------------------


def _empty_result() -> ScheduleResult:
    return ScheduleResult(0.0, 0.0, 0.0, 0.0, 0, 0)


def _length_buckets(widths: np.ndarray) -> List[np.ndarray]:
    """Partition row indices into similar-length buckets (descending).

    Rows are padded per bucket, and a bucket only admits rows at least half
    its widest row — so each bucket's pad is at most ~2x its payload no
    matter how skewed the batch (a lone 32K-item GEMM next to 500-item ones
    must not make every row pay 32K columns).  Row order never affects
    row-wise results, so bucketing is invisible to the numbers.
    """
    order = np.argsort(-widths, kind="stable")
    buckets: List[np.ndarray] = []
    pos = 0
    while pos < order.size:
        bucket_max = int(widths[order[pos]])
        end = pos + 1
        while end < order.size and 2 * int(widths[order[end]]) >= bucket_max:
            end += 1
        buckets.append(order[pos:end])
        pos = end
    return buckets


def execute_schedule_batch(
    schedules: Sequence[_sa.ScheduleArrays],
) -> List[ScheduleResult]:
    """Execute many schedules as one flat segmented batch.

    Per-job results are bit-identical to
    :func:`~repro.perf.schedule_arrays.execute_schedule_arrays`: row-wise
    cumulative sums on a zero-padded 2-D layout reproduce each job's own
    left-associated sums (adding ``0.0`` is exact), and the pipeline
    recurrences — compute chain and drained write chain — run over the
    concatenated arrays with forced restarts at job boundaries.
    """
    lens = np.array([len(s) for s in schedules], dtype=np.int64)
    jobs = int(lens.size)
    if jobs == 0:
        return []
    nonempty = np.flatnonzero(lens)
    if nonempty.size == 0:
        return [_empty_result() for _ in schedules]
    if 2 * int(lens.sum()) > _MAX_PADDED_ELEMENTS:
        # Batch too large to stage even through ~2x-payload bucket pads.
        return [_sa.execute_schedule_arrays(s) for s in schedules]
    if trace.enabled():
        trace.counter("schedule.batched_executions", 1, cat="schedule")
        trace.counter("schedule.batched_jobs", int(nonempty.size), cat="schedule")
        trace.counter(
            "schedule.vectorized_items", int(lens.sum()), cat="schedule"
        )

    active = [schedules[i] for i in nonempty.tolist()]
    alens = lens[nonempty]
    j = len(active)
    fill = np.concatenate([s.fill_cycles for s in active])
    gemm = np.concatenate([s.gemm_cycles for s in active])
    drain = np.concatenate([s.drain_cycles for s in active])
    starts = np.zeros(j, dtype=np.int64)
    np.cumsum(alens[:-1], out=starts[1:])

    # Row-wise padded cumsums, bucketed by length so the pad stays ~2x the
    # payload.  Each padded row reproduces its job's own left-associated
    # cumulative sum exactly (adding 0.0 is a float identity).
    read_free = np.empty(fill.size, dtype=np.float64)
    read_free_last = np.empty(j, dtype=np.float64)
    compute_busy = np.empty(j, dtype=np.float64)
    dma_busy = np.empty(j, dtype=np.float64)
    for idxs in _length_buckets(alens):
        widths = alens[idxs]
        bucket_max = int(widths[0])
        rows = np.arange(idxs.size)
        last_col = widths - 1
        mask = np.arange(bucket_max, dtype=np.int64) < widths[:, None]
        segments = [
            slice(int(starts[i]), int(starts[i] + alens[i])) for i in idxs.tolist()
        ]
        bucket_fill = np.concatenate([fill[s] for s in segments])
        bucket_drain = np.concatenate([drain[s] for s in segments])

        # Read channel: per-job cumulative fill times.
        pad = np.zeros((idxs.size, bucket_max), dtype=np.float64)
        pad[mask] = bucket_fill
        read_csum = np.cumsum(pad, axis=1)
        split_at = np.cumsum(widths)[:-1]
        for segment, chunk in zip(segments, np.split(read_csum[mask], split_at)):
            read_free[segment] = chunk
        read_free_last[idxs] = read_csum[rows, last_col]

        # Compute busy: per-job cumulative GEMM totals.
        pad[:] = 0.0
        pad[mask] = np.concatenate([gemm[s] for s in segments])
        compute_busy[idxs] = np.cumsum(pad, axis=1)[rows, last_col]

        # DMA busy: fills and drains interleaved per item, per job.
        inter = np.zeros((idxs.size, 2 * bucket_max), dtype=np.float64)
        inter[:, 0::2][mask] = bucket_fill
        inter[:, 1::2][mask] = bucket_drain
        dma_busy[idxs] = np.cumsum(inter, axis=1)[rows, 2 * widths - 1]

    # Compute chain: the segmented pipeline recurrence.
    compute_free = _sa.pipeline_free_times_segmented(read_free, gemm, starts)
    compute_free_last = compute_free[starts + alens - 1]

    # Write channel: the drained sub-chain, segmented per job.
    write_final = np.zeros(j, dtype=np.float64)
    drained = np.flatnonzero(drain)
    if drained.size:
        job_of = np.repeat(np.arange(j, dtype=np.int64), alens)
        dj = job_of[drained]
        dstarts = np.flatnonzero(np.diff(dj, prepend=dj[0] - 1))
        dends = np.append(dstarts[1:], dj.size) - 1
        w = _sa.pipeline_free_times_segmented(
            compute_free[drained], drain[drained], dstarts
        )
        write_final[dj[dstarts]] = w[dends]

    total = np.maximum(np.maximum(compute_free_last, read_free_last), write_final)
    exposed = np.maximum(0.0, total - compute_busy)

    results: List[ScheduleResult] = [_empty_result() for _ in schedules]
    for pos, sched_idx in enumerate(nonempty.tolist()):
        results[sched_idx] = ScheduleResult(
            total_cycles=float(total[pos]),
            compute_cycles=float(compute_busy[pos]),
            dma_cycles=float(dma_busy[pos]),
            exposed_dma_cycles=float(exposed[pos]),
            items=int(alens[pos]),
            macs=int(schedules[sched_idx].macs.sum()),
        )
    return results
