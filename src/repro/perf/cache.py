"""Simulation memoization: fingerprinted keys + a process-wide cache.

Every timing entry point is a pure function of plain frozen dataclasses
(:class:`~repro.systolic.config.TPUConfig`, :class:`~repro.gpu.config.GPUConfig`,
:class:`~repro.core.conv_spec.ConvSpec`, ...) and a few scalars, so results
can be memoized under a structural fingerprint of the arguments.  The
experiments re-price the same baselines figure after figure and networks
repeat layers; the cache collapses all of that to one computation each.

Invalidation rules (tested in ``tests/perf/test_cache.py``):

- the fingerprint recurses into nested dataclasses field by field, so
  changing **any** field of a config or spec — including nested HBM/SRAM
  sub-configs — produces a different key;
- :func:`spec_key` deliberately **excludes** ``ConvSpec.name``: timing is
  name-independent, so renamed copies of a layer share one entry (callers
  re-label the cached result).  The generic :func:`fingerprint` used for the
  GPU models keeps the name, because the measurement stand-ins derive their
  deterministic noise from ``spec.describe()``.
- :func:`canonical_spec` goes one step further than dropping the name: it
  folds *timing-equivalent* ConvSpecs onto one representative (H/W
  transposes, pointwise dilation, see the function docstring), and callers
  pass the canonical fingerprint as a **secondary** key.  A lookup that
  misses on the exact key but hits the canonical one is a ``canonical_hit``
  and aliases the exact key to the shared value.  Every fold is gated on the
  exact conditions under which the fill/occupancy model is provably
  invariant — never "close enough" (DESIGN.md section 4h).

Cached values are frozen dataclasses shared by reference; they must never be
mutated by callers (use ``dataclasses.replace``).
"""

from __future__ import annotations

import dataclasses
import enum
import functools
from typing import Any, Callable, Optional, Tuple

from repro.trace import tracer as _trace
from repro.obs.flight import beacon as _beacon

__all__ = [
    "SimulationCache",
    "CacheStats",
    "SIM_CACHE",
    "fingerprint",
    "spec_key",
    "config_key",
    "canonical_spec",
    "canonical_layout",
    "memoized_model",
    "cache_stats",
    "clear_cache",
    "reset_cache_stats",
    "set_cache_enabled",
]


@dataclasses.dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of one cache (or the global one).

    ``canonical_hits`` counts the subset of ``hits`` served through a
    canonical (symmetry-folded) key rather than the exact key, and
    ``persistent_hits`` the subset served by the attached on-disk store
    (:mod:`repro.store`) after both in-memory keys missed; exact in-memory
    hits are therefore ``hits - canonical_hits - persistent_hits``.
    """

    hits: int
    misses: int
    entries: int
    canonical_hits: int = 0
    persistent_hits: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def exact_hits(self) -> int:
        return self.hits - self.canonical_hits - self.persistent_hits

    def __add__(self, other: "CacheStats") -> "CacheStats":
        """Aggregate stats across runs/processes.

        ``entries`` adds too: under ``--jobs N`` each worker owns a separate
        store, so the sum is the fleet-wide entry count.
        """
        if not isinstance(other, CacheStats):
            return NotImplemented
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            entries=self.entries + other.entries,
            canonical_hits=self.canonical_hits + other.canonical_hits,
            persistent_hits=self.persistent_hits + other.persistent_hits,
        )


#: Sentinel distinguishing "no cached value" from a cached ``None``.
_MISSING = object()


class SimulationCache:
    """A keyed result store with hit/miss accounting.

    Unbounded by design: one entry per distinct (model, config, problem)
    combination, each a small frozen dataclass — the whole harness fits in a
    few thousand entries.

    A lookup may carry a secondary ``canonical_key`` (a symmetry-folded
    fingerprint, :func:`canonical_spec`).  When the exact key misses but the
    canonical key holds a value, the hit is counted as a ``canonical_hit``
    and the exact key is aliased to the shared value; computed values are
    stored under both keys.  ``entries`` counts distinct stored results, not
    aliases.

    An on-disk :class:`~repro.store.ResultStore` may be attached as
    ``backing`` (``repro.store.attach``): a probe that misses both in-memory
    keys then consults the store (exact + canonical digest), counts the
    serve as a ``persistent_hit``, and installs the value in memory; every
    computed value is written through.  With no backing attached (the
    default) behaviour is bit-for-bit unchanged.
    """

    __slots__ = (
        "_store", "_aliases", "hits", "misses", "canonical_hits",
        "persistent_hits", "enabled", "backing",
    )

    def __init__(self, enabled: bool = True):
        self._store: dict = {}
        self._aliases = 0
        self.hits = 0
        self.misses = 0
        self.canonical_hits = 0
        self.persistent_hits = 0
        self.enabled = enabled
        self.backing = None  # Optional[repro.store.ResultStore]

    def get_or_compute(
        self,
        key: Tuple,
        compute: Callable[[], Any],
        canonical_key: Optional[Tuple] = None,
    ) -> Any:
        if not self.enabled:
            return compute()
        found, value = self.probe(key, canonical_key)
        if found:
            return value
        value = compute()
        self.store(key, value, canonical_key)
        return value

    # ---------------------------------------------------------- batch protocol
    # The batched engine needs the lookup split from the compute so it can
    # price all misses in one shot while keeping the hit/miss stream
    # identical to a per-layer loop.
    def probe(self, key: Tuple, canonical_key: Optional[Tuple] = None):
        """One counted lookup: ``(found, value)``.

        Counts exactly what a :meth:`get_or_compute` call would have counted
        for the same keys (a canonical-key serve aliases the exact key).

        Each probe notes its serving tier (``exact``/``canonical``/
        ``persistent``/``miss``) on the status beacon — an attribute bump,
        always on — and, only while tracing is enabled, emits a
        ``cache.probe`` instant so request span trees show which tier
        answered.
        """
        value = self._store.get(key, _MISSING)
        if value is not _MISSING:
            self.hits += 1
            self._note_probe("exact")
            return True, value
        if canonical_key is not None and canonical_key != key:
            value = self._store.get(canonical_key, _MISSING)
            if value is not _MISSING:
                self.hits += 1
                self.canonical_hits += 1
                self._store[key] = value
                self._aliases += 1
                self._note_probe("canonical")
                return True, value
        if self.backing is not None:
            found, value, _ = self.backing.load(key, canonical_key)
            if found:
                self.hits += 1
                self.persistent_hits += 1
                self._store[key] = value
                if canonical_key is not None and canonical_key != key:
                    if self._store.setdefault(canonical_key, value) is value:
                        self._aliases += 1
                self._note_probe("persistent")
                return True, value
        self.misses += 1
        self._note_probe("miss")
        return False, None

    def peek(self, key: Tuple, canonical_key: Optional[Tuple] = None):
        """Uncounted lookup: ``(found, value)``, no stats, no beacon.

        The serve daemon's *store-only* degradation rung answers warm hits
        and honestly 503s misses; its admission probe must not perturb the
        hit/miss accounting the batcher uses to count fresh simulations.
        A memory hit does not promote or alias; a backing-store hit is
        promoted (that read already paid the disk I/O).
        """
        value = self._store.get(key, _MISSING)
        if value is not _MISSING:
            return True, value
        if canonical_key is not None and canonical_key != key:
            value = self._store.get(canonical_key, _MISSING)
            if value is not _MISSING:
                return True, value
        if self.backing is not None:
            found, value, _ = self.backing.load(key, canonical_key)
            if found:
                self._store[key] = value
                return True, value
        return False, None

    @staticmethod
    def _note_probe(tier: str) -> None:
        _beacon.get_beacon().note_cache(tier)
        if _trace.enabled():
            _trace.instant("cache.probe", cat="cache", tier=tier)

    def note_pending_hit(self, canonical: bool = False) -> None:
        """Reclassify the last counted miss as a hit.

        The batched engine calls this when a probe missed the store but an
        identical job is already scheduled in the same batch: a per-layer
        loop would have stored the first job's value before looking the
        second one up, so the faithful count is a hit.
        """
        self.misses -= 1
        self.hits += 1
        if canonical:
            self.canonical_hits += 1

    def store(self, key: Tuple, value: Any, canonical_key: Optional[Tuple] = None) -> None:
        """Insert a computed value (no counter changes; no-op when disabled)."""
        if not self.enabled:
            return
        self._store[key] = value
        if canonical_key is not None and canonical_key != key:
            if self._store.setdefault(canonical_key, value) is value:
                self._aliases += 1
        if self.backing is not None:
            self.backing.save(key, value, canonical_key)

    def clear(self) -> None:
        self._store.clear()
        self._aliases = 0
        self.hits = 0
        self.misses = 0
        self.canonical_hits = 0
        self.persistent_hits = 0

    def reset_stats(self) -> None:
        """Zero the hit/miss counters without dropping cached entries.

        This is what "per-run" accounting needs: pooled worker processes
        keep their warm stores between experiments, but each run's report
        should count only its own lookups.
        """
        self.hits = 0
        self.misses = 0
        self.canonical_hits = 0
        self.persistent_hits = 0

    def __len__(self) -> int:
        return len(self._store) - self._aliases

    @property
    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            entries=len(self),
            canonical_hits=self.canonical_hits,
            persistent_hits=self.persistent_hits,
        )


#: The process-wide cache every simulator entry point shares.
SIM_CACHE = SimulationCache()


def cache_stats() -> CacheStats:
    """Hit/miss statistics of the global simulation cache."""
    return SIM_CACHE.stats


def clear_cache() -> None:
    """Drop every cached result and reset the counters."""
    SIM_CACHE.clear()


def reset_cache_stats() -> None:
    """Zero the global cache's hit/miss counters, keeping its entries."""
    SIM_CACHE.reset_stats()


def set_cache_enabled(enabled: bool) -> None:
    """Globally enable/disable memoization (results are recomputed when off)."""
    SIM_CACHE.enabled = bool(enabled)


def fingerprint(value: Any) -> Any:
    """A hashable structural fingerprint of an argument.

    Dataclasses become ``(TypeName, field fingerprints...)`` — recursing, so
    nested configs contribute every field; enums use their value; sequences
    become tuples.  Anything else must already be hashable (ints, floats,
    strings, bools, None).
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        try:
            return _dataclass_fingerprint(value)
        except TypeError:  # unhashable instance (mutable fields) — recompute
            return _dataclass_fingerprint.__wrapped__(value)
    if isinstance(value, enum.Enum):
        return (type(value).__name__, value.value)
    if isinstance(value, (tuple, list)):
        return tuple(fingerprint(v) for v in value)
    return value


@functools.lru_cache(maxsize=None)
def _dataclass_fingerprint(value: Any) -> Tuple:
    """Memoized dataclass fingerprint — the ``dataclasses.fields`` reflection
    dominates warm ``simulate_conv`` dispatch otherwise (BENCH_perf latency
    histograms put warm calls at ~40µs, most of it key construction)."""
    return (type(value).__name__,) + tuple(
        fingerprint(getattr(value, f.name)) for f in dataclasses.fields(value)
    )


def spec_key(spec: Any) -> Tuple:
    """Fingerprint of a ConvSpec with the ``name`` label excluded.

    Cycle counts cannot depend on what a layer is called; excluding the name
    lets every same-shape layer across networks and figures share one entry.
    """
    try:
        return _spec_key_cached(spec)
    except TypeError:  # unhashable spec subclass — fall back to direct build
        return _spec_key_uncached(spec)


def _spec_key_uncached(spec: Any) -> Tuple:
    return (type(spec).__name__,) + tuple(
        fingerprint(getattr(spec, f.name))
        for f in dataclasses.fields(spec)
        if f.name != "name"
    )


_spec_key_cached = functools.lru_cache(maxsize=None)(_spec_key_uncached)


def config_key(config: Any) -> Tuple:
    """Fingerprint of an accelerator config (all fields, nested included)."""
    return fingerprint(config)


# --------------------------------------------------------------------------
# Canonicalization: fold timing-equivalent problems onto one representative
# --------------------------------------------------------------------------


def canonical_spec(spec):
    """Fold a ConvSpec onto its timing-canonical representative.

    Returns ``(canonical, relabel)`` where ``relabel(result)`` restores the
    caller-visible name on a served ``LayerResult``.  Each rewrite below is
    applied only under the exact conditions for which the channel-first
    schedule (fills, occupancy, drains, tiling policy) is provably invariant
    — the cached value is shared, so "approximately equal" is not an option:

    - **name strip**: timing never depends on the label (same rule as
      :func:`spec_key`).
    - **pointwise dilation fold** (``dilation -> 1``): a 1x1 kernel has no
      spatial extent, so dilation only reaches the fill model through the
      contiguity flag ``stride == 1 and dilation == 1``.  With ``stride > 1``
      that flag is False either way, and the geometry (``h_out``/``w_out``,
      lowered dims, MACs) of a 1x1 kernel is dilation-free — decomposed-1x1
      position symmetry.  At ``stride == 1`` the fold would flip the DRAM
      run coalescing, so it is **not** applied there.
    - **H/W transpose** (order ``h_in <= w_in``): legal only for square
      filters (the multi-tile policy and row-aligned grouping read
      ``w_filter``) on the non-contiguous path (``stride > 1`` or
      ``dilation > 1``), where the fill model sees only products
      (``h_in*w_in``, ``h_out*w_out``) — the contiguous path coalesces runs
      per output row (``ceil/w_out``), which a transpose would change.

    Batch folding (moving N into H*W) is deliberately **absent** here: the
    HWCN vector-memory word packs the batch dimension, so ``n`` enters the
    fill model's run structure and address span directly (Sec. IV-C) —
    N x HW commutation only holds where the schedule sees GEMM rows alone,
    which is the explicit-im2col path (see ``explicit_schedule``).
    """
    canon = spec
    if canon.name:
        canon = dataclasses.replace(canon, name="")
    if (
        canon.h_filter == 1
        and canon.w_filter == 1
        and canon.dilation != 1
        and canon.stride > 1
    ):
        canon = dataclasses.replace(canon, dilation=1)
    if (
        canon.h_filter == canon.w_filter
        and canon.h_in > canon.w_in
        and (canon.stride > 1 or canon.dilation > 1)
    ):
        canon = dataclasses.replace(canon, h_in=canon.w_in, w_in=canon.h_in)

    def relabel(result):
        name = spec.describe() or "conv"
        if result.name == name:
            return result
        return dataclasses.replace(result, name=name)

    return canon, relabel


def canonical_layout(layout):
    """Fold DRAM layouts the fill engine prices identically.

    The run/span model only distinguishes channel-last (``NHWC``/``HWCN``)
    from channel-major (``NCHW``/``CHWN``) — within a pair the batch position
    never reaches a priced quantity.
    """
    value = getattr(layout, "value", layout)
    if value in ("NHWC", "HWCN"):
        return "NHWC"
    if value in ("NCHW", "CHWN"):
        return "NCHW"
    return value


def memoized_model(func: Callable) -> Callable:
    """Memoize an analytic timing model through the global cache.

    The key fingerprints every positional and keyword argument (names
    included — GPU noise models hash ``spec.describe()``), plus the
    function's qualified name so distinct models never collide.
    """

    @functools.wraps(func)
    def wrapper(*args, **kwargs):
        key = (
            func.__module__,
            func.__qualname__,
            tuple(fingerprint(a) for a in args),
            tuple(sorted((k, fingerprint(v)) for k, v in kwargs.items())),
        )
        return SIM_CACHE.get_or_compute(key, lambda: func(*args, **kwargs))

    return wrapper
