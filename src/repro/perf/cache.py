"""Simulation memoization: fingerprinted keys + a process-wide cache.

Every timing entry point is a pure function of plain frozen dataclasses
(:class:`~repro.systolic.config.TPUConfig`, :class:`~repro.gpu.config.GPUConfig`,
:class:`~repro.core.conv_spec.ConvSpec`, ...) and a few scalars, so results
can be memoized under a structural fingerprint of the arguments.  The
experiments re-price the same baselines figure after figure and networks
repeat layers; the cache collapses all of that to one computation each.

Invalidation rules (tested in ``tests/perf/test_cache.py``):

- the fingerprint recurses into nested dataclasses field by field, so
  changing **any** field of a config or spec — including nested HBM/SRAM
  sub-configs — produces a different key;
- :func:`spec_key` deliberately **excludes** ``ConvSpec.name``: timing is
  name-independent, so renamed copies of a layer share one entry (callers
  re-label the cached result).  The generic :func:`fingerprint` used for the
  GPU models keeps the name, because the measurement stand-ins derive their
  deterministic noise from ``spec.describe()``.

Cached values are frozen dataclasses shared by reference; they must never be
mutated by callers (use ``dataclasses.replace``).
"""

from __future__ import annotations

import dataclasses
import enum
import functools
from typing import Any, Callable, Tuple

__all__ = [
    "SimulationCache",
    "CacheStats",
    "SIM_CACHE",
    "fingerprint",
    "spec_key",
    "config_key",
    "memoized_model",
    "cache_stats",
    "clear_cache",
    "reset_cache_stats",
    "set_cache_enabled",
]


@dataclasses.dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of one cache (or the global one)."""

    hits: int
    misses: int
    entries: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __add__(self, other: "CacheStats") -> "CacheStats":
        """Aggregate stats across runs/processes.

        ``entries`` adds too: under ``--jobs N`` each worker owns a separate
        store, so the sum is the fleet-wide entry count.
        """
        if not isinstance(other, CacheStats):
            return NotImplemented
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            entries=self.entries + other.entries,
        )


class SimulationCache:
    """A keyed result store with hit/miss accounting.

    Unbounded by design: one entry per distinct (model, config, problem)
    combination, each a small frozen dataclass — the whole harness fits in a
    few thousand entries.
    """

    __slots__ = ("_store", "hits", "misses", "enabled")

    def __init__(self, enabled: bool = True):
        self._store: dict = {}
        self.hits = 0
        self.misses = 0
        self.enabled = enabled

    def get_or_compute(self, key: Tuple, compute: Callable[[], Any]) -> Any:
        if not self.enabled:
            return compute()
        try:
            value = self._store[key]
        except KeyError:
            self.misses += 1
            value = compute()
            self._store[key] = value
            return value
        self.hits += 1
        return value

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0

    def reset_stats(self) -> None:
        """Zero the hit/miss counters without dropping cached entries.

        This is what "per-run" accounting needs: pooled worker processes
        keep their warm stores between experiments, but each run's report
        should count only its own lookups.
        """
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    @property
    def stats(self) -> CacheStats:
        return CacheStats(hits=self.hits, misses=self.misses, entries=len(self._store))


#: The process-wide cache every simulator entry point shares.
SIM_CACHE = SimulationCache()


def cache_stats() -> CacheStats:
    """Hit/miss statistics of the global simulation cache."""
    return SIM_CACHE.stats


def clear_cache() -> None:
    """Drop every cached result and reset the counters."""
    SIM_CACHE.clear()


def reset_cache_stats() -> None:
    """Zero the global cache's hit/miss counters, keeping its entries."""
    SIM_CACHE.reset_stats()


def set_cache_enabled(enabled: bool) -> None:
    """Globally enable/disable memoization (results are recomputed when off)."""
    SIM_CACHE.enabled = bool(enabled)


def fingerprint(value: Any) -> Any:
    """A hashable structural fingerprint of an argument.

    Dataclasses become ``(TypeName, field fingerprints...)`` — recursing, so
    nested configs contribute every field; enums use their value; sequences
    become tuples.  Anything else must already be hashable (ints, floats,
    strings, bools, None).
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (type(value).__name__,) + tuple(
            fingerprint(getattr(value, f.name)) for f in dataclasses.fields(value)
        )
    if isinstance(value, enum.Enum):
        return (type(value).__name__, value.value)
    if isinstance(value, (tuple, list)):
        return tuple(fingerprint(v) for v in value)
    return value


def spec_key(spec: Any) -> Tuple:
    """Fingerprint of a ConvSpec with the ``name`` label excluded.

    Cycle counts cannot depend on what a layer is called; excluding the name
    lets every same-shape layer across networks and figures share one entry.
    """
    return (type(spec).__name__,) + tuple(
        fingerprint(getattr(spec, f.name))
        for f in dataclasses.fields(spec)
        if f.name != "name"
    )


def config_key(config: Any) -> Tuple:
    """Fingerprint of an accelerator config (all fields, nested included)."""
    return fingerprint(config)


def memoized_model(func: Callable) -> Callable:
    """Memoize an analytic timing model through the global cache.

    The key fingerprints every positional and keyword argument (names
    included — GPU noise models hash ``spec.describe()``), plus the
    function's qualified name so distinct models never collide.
    """

    @functools.wraps(func)
    def wrapper(*args, **kwargs):
        key = (
            func.__module__,
            func.__qualname__,
            tuple(fingerprint(a) for a in args),
            tuple(sorted((k, fingerprint(v)) for k, v in kwargs.items())),
        )
        return SIM_CACHE.get_or_compute(key, lambda: func(*args, **kwargs))

    return wrapper
