"""Struct-of-arrays schedules: the vectorized twin of the item scheduler.

The per-item scheduler (:mod:`repro.systolic.scheduler`) materialises one
:class:`~repro.systolic.scheduler.WorkItem` dataclass per stationary tile and
folds over them in Python — clear, but every experiment pays tens of
thousands of attribute lookups per layer.  This module holds the same
schedule as four parallel NumPy arrays (:class:`ScheduleArrays`) and executes
the two-resource pipeline as a prefix recurrence over them.

**Bit-exactness is a hard contract**, not an aspiration: every cycle count
produced here must equal the per-item path's result to the last float bit,
because the exported results are compared textually at full precision.

Two properties make that possible:

- *Construction*: each scalar cost (weight fill, IFMap fill, drain,
  occupancy) takes values from a tiny set of distinct arguments — block rows
  are ``m_block`` or one remainder, K/N chunks are full or one tail.  The
  builders call the **same** scalar pricing functions once per distinct
  argument tuple and tile the per-block template, so every array element is
  the identical float the item path would have computed.
- *Execution*: the pipeline recurrence ``w_i = max(w_{i-1}, s_i) + a_i`` is
  evaluated by :func:`pipeline_free_times` with strictly left-to-right
  associated additions (``np.cumsum`` over restart segments), matching the
  reference fold's rounding exactly; a naive closed form
  (``cumsum(a) + maximum.accumulate(s - cumsum(a))``) reassociates the sums
  and drifts by ulps, so it is used only as the segmentation *guess* and the
  result is verified against the recurrence's fixpoint condition.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from ..core.conv_spec import ConvSpec, GemmShape
from ..core.layouts import Layout
from ..core.tiling import MultiTileGroup, plan_multi_tile, tpu_multi_tile_policy
from ..trace import tracer as trace
from ..systolic.config import TPUConfig
from ..systolic.dma import FillEngine
from ..systolic.scheduler import (
    ScheduleResult,
    WorkItem,
    ifmap_rows_per_block,
    MIN_BLOCK_ROWS,
    MIN_PIPELINE_BLOCKS,
    tile_occupancy_cycles,
)

__all__ = [
    "ScheduleArrays",
    "channel_first_schedule_arrays",
    "conv_schedule_arrays_from_groups",
    "gemm_schedule_arrays",
    "execute_schedule_arrays",
    "execute_multi_array_schedule",
    "pipeline_free_times",
    "pipeline_free_times_segmented",
    "schedule_construction_count",
]

#: Number of schedule constructions performed since import — lets tests (and
#: the cache smoke test) assert that a memoized re-simulation builds nothing.
_CONSTRUCTION_COUNT = 0


def schedule_construction_count() -> int:
    """How many array schedules have been constructed in this process."""
    return _CONSTRUCTION_COUNT


@dataclasses.dataclass
class ScheduleArrays:
    """One schedule as four parallel arrays (float64 cycles, int64 MACs).

    Index ``i`` of every array describes the same work item the per-item
    scheduler would have emitted at position ``i``.
    """

    gemm_cycles: np.ndarray
    fill_cycles: np.ndarray
    drain_cycles: np.ndarray
    macs: np.ndarray

    def __len__(self) -> int:
        return int(self.gemm_cycles.size)

    def without_drains(self) -> "ScheduleArrays":
        """A copy whose OFMap drains are elided (network residency)."""
        return ScheduleArrays(
            gemm_cycles=self.gemm_cycles,
            fill_cycles=self.fill_cycles,
            drain_cycles=np.zeros_like(self.drain_cycles),
            macs=self.macs,
        )

    @classmethod
    def from_work_items(cls, items: Sequence[WorkItem]) -> "ScheduleArrays":
        return cls(
            gemm_cycles=np.array([i.gemm_cycles for i in items], dtype=np.float64),
            fill_cycles=np.array([i.fill_cycles for i in items], dtype=np.float64),
            drain_cycles=np.array([i.drain_cycles for i in items], dtype=np.float64),
            macs=np.array([i.macs for i in items], dtype=np.int64),
        )

    def to_work_items(self, prefix: str = "item") -> List[WorkItem]:
        """Materialise per-item objects (debugging / cross-checks only)."""
        return [
            WorkItem(
                label=f"{prefix}{i}",
                gemm_cycles=float(self.gemm_cycles[i]),
                fill_cycles=float(self.fill_cycles[i]),
                drain_cycles=float(self.drain_cycles[i]),
                macs=int(self.macs[i]),
            )
            for i in range(len(self))
        ]


# --------------------------------------------------------------------------
# Exact vectorized pipeline recurrence
# --------------------------------------------------------------------------

_MAX_SEGMENT_REFINES = 6


def pipeline_free_times(start_floor: np.ndarray, busy: np.ndarray) -> np.ndarray:
    """Solve ``w_i = max(w_{i-1}, s_i) + a_i`` (``w_{-1} = 0``) bit-exactly.

    ``start_floor`` (``s``) is the earliest moment item ``i`` may start (its
    fill landing, or its producing GEMM finishing); ``busy`` (``a``) is the
    resource time it then holds.  The result is identical — in every float
    bit — to the sequential fold, because within each "restart segment"
    (a maximal run where the resource never idles) the value is a plain
    left-associated running sum, evaluated here with ``np.cumsum``.

    The segmentation (the set of ``i`` where ``s_i >= w_{i-1}``, i.e. the
    resource sat idle and the term restarts from ``s_i``) is guessed from the
    reassociated closed form and then verified as a fixpoint of the exact
    evaluation; on the rare non-converging input the scalar fold runs.
    """
    s = np.asarray(start_floor, dtype=np.float64)
    a = np.asarray(busy, dtype=np.float64)
    n = s.size
    if n == 0:
        return np.empty(0, dtype=np.float64)
    if n == 1:
        return np.array([max(0.0, float(s[0])) + float(a[0])])

    # Reassociated closed form — correct up to rounding, used only as the
    # initial segmentation guess.
    acc = np.cumsum(a)
    acc_prev = np.empty_like(acc)
    acc_prev[0] = 0.0
    acc_prev[1:] = acc[:-1]
    w = acc + np.maximum.accumulate(np.maximum(s - acc_prev, -acc_prev))

    restart = np.empty(n, dtype=bool)
    for _ in range(_MAX_SEGMENT_REFINES):
        restart[0] = True
        np.greater_equal(s[1:], w[:-1], out=restart[1:])
        w_new = _evaluate_segments(s, a, restart)
        stable = bool(np.all((s[1:] >= w_new[:-1]) == restart[1:]))
        w = w_new
        if stable:
            return w

    # Fallback: the plain fold (never observed to trigger; kept for safety).
    out = np.empty(n, dtype=np.float64)
    prev = 0.0
    s_list = s.tolist()
    a_list = a.tolist()
    for i in range(n):
        prev = max(prev, s_list[i]) + a_list[i]
        out[i] = prev
    return out


def pipeline_free_times_segmented(
    start_floor: np.ndarray, busy: np.ndarray, seg_starts: np.ndarray
) -> np.ndarray:
    """Independent :func:`pipeline_free_times` over concatenated jobs.

    ``seg_starts`` marks where each job's chain begins in the flat arrays;
    the recurrence state resets there (``w_{-1} = 0`` per job), so slicing
    the result at a job's bounds is bit-identical to running
    :func:`pipeline_free_times` on that job alone.  The exact evaluation is
    shared across the whole flat array: job boundaries are simply *forced*
    restarts in the segmentation, and :func:`_evaluate_segments` already
    evaluates every restart segment with its own left-associated cumsum.

    Like the per-job solver, this assumes ``start_floor >= 0`` at each job's
    first item (true for every schedule: fills and compute-free floors are
    nonnegative), so a forced restart yields ``s + a`` exactly as the
    reference fold's ``max(0, s) + a`` would.
    """
    s = np.asarray(start_floor, dtype=np.float64)
    a = np.asarray(busy, dtype=np.float64)
    n = s.size
    if n == 0:
        return np.empty(0, dtype=np.float64)
    seg_starts = np.asarray(seg_starts, dtype=np.int64)
    forced = np.zeros(n, dtype=bool)
    forced[seg_starts] = True
    forced[0] = True

    # Per-job reassociated closed-form guess (rounding-tolerant: it only
    # seeds the segmentation, which the fixpoint check below verifies).
    w = np.empty(n, dtype=np.float64)
    bounds = np.flatnonzero(forced)
    for st, en in zip(bounds.tolist(), np.append(bounds[1:], n).tolist()):
        ss = s[st:en]
        acc = np.cumsum(a[st:en])
        acc_prev = np.empty_like(acc)
        acc_prev[0] = 0.0
        acc_prev[1:] = acc[:-1]
        w[st:en] = acc + np.maximum.accumulate(np.maximum(ss - acc_prev, -acc_prev))

    restart = np.empty(n, dtype=bool)
    for _ in range(_MAX_SEGMENT_REFINES):
        restart[0] = True
        np.greater_equal(s[1:], w[:-1], out=restart[1:])
        restart |= forced
        w_new = _evaluate_segments(s, a, restart)
        # Forced positions restart regardless of the idle condition, so they
        # are exempt from the fixpoint check.
        stable = bool(
            np.all(((s[1:] >= w_new[:-1]) == restart[1:]) | forced[1:])
        )
        w = w_new
        if stable:
            return w

    # Fallback: the plain fold with per-job resets (safety net).
    out = np.empty(n, dtype=np.float64)
    prev = 0.0
    s_list = s.tolist()
    a_list = a.tolist()
    forced_list = forced.tolist()
    for i in range(n):
        if forced_list[i]:
            prev = 0.0
        prev = max(prev, s_list[i]) + a_list[i]
        out[i] = prev
    return out


def _evaluate_segments(s: np.ndarray, a: np.ndarray, restart: np.ndarray) -> np.ndarray:
    """Exact left-associated evaluation given a restart segmentation."""
    n = s.size
    starts = np.flatnonzero(restart)
    ends = np.append(starts[1:], n)
    out = np.empty(n, dtype=np.float64)
    lengths = ends - starts
    single = lengths == 1
    idx = starts[single]
    if idx.size:
        out[idx] = s[idx] + a[idx]
    for st, en in zip(starts[~single].tolist(), ends[~single].tolist()):
        seg = np.empty(en - st + 1, dtype=np.float64)
        seg[0] = s[st]
        seg[1:] = a[st:en]
        out[st:en] = np.cumsum(seg)[1:]
    return out


def _dma_busy_cycles(fill: np.ndarray, drain: np.ndarray) -> float:
    """``sum(fill_i) + sum(drain_i)`` in the reference's interleaved order.

    The fold adds fill then (nonzero) drain per item; adding ``0.0`` is an
    exact identity, so interleaving both arrays reproduces the order.
    """
    interleaved = np.empty(2 * fill.size, dtype=np.float64)
    interleaved[0::2] = fill
    interleaved[1::2] = drain
    return float(np.cumsum(interleaved)[-1])


def execute_schedule_arrays(schedule: ScheduleArrays) -> ScheduleResult:
    """Vectorized twin of :func:`repro.systolic.scheduler.execute_schedule`.

    Produces bit-identical :class:`ScheduleResult` fields (see the module
    docstring for why that holds).
    """
    n = len(schedule)
    if n == 0:
        return ScheduleResult(0.0, 0.0, 0.0, 0.0, 0, 0)
    if trace.enabled():
        trace.counter("schedule.vectorized_executions", 1, cat="schedule")
        trace.counter("schedule.vectorized_items", n, cat="schedule")
    fill = schedule.fill_cycles
    gemm = schedule.gemm_cycles
    drain = schedule.drain_cycles

    read_free = np.cumsum(fill)
    compute_free = pipeline_free_times(read_free, gemm)

    drained = np.flatnonzero(drain)
    write_free_final = 0.0
    if drained.size:
        write_free_final = float(
            pipeline_free_times(compute_free[drained], drain[drained])[-1]
        )

    compute_busy = float(np.cumsum(gemm)[-1])
    total = max(float(compute_free[-1]), float(read_free[-1]), write_free_final)
    return ScheduleResult(
        total_cycles=total,
        compute_cycles=compute_busy,
        dma_cycles=_dma_busy_cycles(fill, drain),
        exposed_dma_cycles=max(0.0, total - compute_busy),
        items=n,
        macs=int(schedule.macs.sum()),
    )


def execute_multi_array_schedule(schedule: ScheduleArrays, arrays: int) -> tuple:
    """Vectorized twin of ``dual_mxu._execute_multi_array``.

    Items round-robin over ``arrays`` engines that share one read and one
    write DMA channel; each engine's occupancy chain is an independent
    pipeline recurrence over its stride-``arrays`` slice.  Returns
    ``(total, compute_busy, dma_busy, macs)``.
    """
    n = len(schedule)
    if n == 0:
        return 0.0, 0.0, 0.0, 0
    fill = schedule.fill_cycles
    gemm = schedule.gemm_cycles
    drain = schedule.drain_cycles

    read_free = np.cumsum(fill)
    compute_free = np.empty(n, dtype=np.float64)
    for engine in range(min(arrays, n)):
        sl = slice(engine, n, arrays)
        compute_free[sl] = pipeline_free_times(read_free[sl], gemm[sl])

    drained = np.flatnonzero(drain)
    write_free_final = 0.0
    if drained.size:
        write_free_final = float(
            pipeline_free_times(compute_free[drained], drain[drained])[-1]
        )
    compute_busy = float(np.cumsum(gemm)[-1])
    total = max(float(compute_free.max()), float(read_free[-1]), write_free_final)
    return total, compute_busy, _dma_busy_cycles(fill, drain), int(schedule.macs.sum())


# --------------------------------------------------------------------------
# Vectorized builders
# --------------------------------------------------------------------------


def _assemble_blocks(templates: dict, rows_sequence: List[int]) -> ScheduleArrays:
    """Concatenate per-block templates in block order (tiling equal runs)."""
    parts_fill: List[np.ndarray] = []
    parts_gemm: List[np.ndarray] = []
    parts_drain: List[np.ndarray] = []
    parts_macs: List[np.ndarray] = []
    i = 0
    while i < len(rows_sequence):
        rows = rows_sequence[i]
        j = i
        while j < len(rows_sequence) and rows_sequence[j] == rows:
            j += 1
        fill, gemm, drain, macs = templates[rows]
        reps = j - i
        parts_fill.append(np.tile(fill, reps) if reps > 1 else fill)
        parts_gemm.append(np.tile(gemm, reps) if reps > 1 else gemm.copy())
        parts_drain.append(np.tile(drain, reps) if reps > 1 else drain)
        parts_macs.append(np.tile(macs, reps) if reps > 1 else macs)
        i = j
    if len(parts_fill) == 1:
        return ScheduleArrays(parts_gemm[0], parts_fill[0], parts_drain[0], parts_macs[0])
    return ScheduleArrays(
        gemm_cycles=np.concatenate(parts_gemm),
        fill_cycles=np.concatenate(parts_fill),
        drain_cycles=np.concatenate(parts_drain),
        macs=np.concatenate(parts_macs),
    )


def conv_schedule_arrays_from_groups(
    spec: ConvSpec,
    config: TPUConfig,
    engine: FillEngine,
    groups: Sequence[MultiTileGroup],
    group_size: int,
    layout: Layout = Layout.NHWC,
) -> ScheduleArrays:
    """Array schedule for a channel-first conv over explicit tile groups.

    Mirrors the item builder's loop nest — blocks x groups x K-chunks x
    N-chunks — but prices each distinct scalar argument tuple once and tiles
    the per-block template over the equal-row blocks.
    """
    global _CONSTRUCTION_COUNT
    _CONSTRUCTION_COUNT += 1
    if trace.enabled():
        trace.counter("schedule.constructions", 1, cat="schedule")
    array_rows, array_cols = config.array_rows, config.array_cols
    m_total = spec.lowered_rows()
    m_block = ifmap_rows_per_block(spec, config, group_size)
    n_blocks = -(-m_total // m_block)
    rows_sequence = [m_block] * (n_blocks - 1) + [m_total - m_block * (n_blocks - 1)]

    weight_fill_memo: dict = {}
    occupancy_memo: dict = {}
    drain_memo: dict = {}
    ifmap_fill_memo: dict = {}

    def template(rows: int):
        fills: List[float] = []
        gemms: List[float] = []
        drains: List[float] = []
        macs: List[int] = []
        last_group_index = len(groups) - 1
        for gi, group in enumerate(groups):
            merged_k = group.merged_k
            fill_key = (rows, group.group_size)
            input_fill = ifmap_fill_memo.get(fill_key)
            if input_fill is None:
                input_fill = engine.ifmap_tile_fill_cycles(
                    spec, rows, group.group_size, layout=layout
                )
                ifmap_fill_memo[fill_key] = input_fill
            first_chunk = True
            for k0 in range(0, merged_k, array_rows):
                k_t = min(array_rows, merged_k - k0)
                drains_here = gi == last_group_index and k0 + k_t >= merged_k
                for n0 in range(0, spec.c_out, array_cols):
                    n_t = min(array_cols, spec.c_out - n0)
                    fill = weight_fill_memo.get((k_t, n_t))
                    if fill is None:
                        fill = engine.weight_fill_cycles(k_t, n_t)
                        weight_fill_memo[(k_t, n_t)] = fill
                    if first_chunk:
                        fill = fill + input_fill
                        first_chunk = False
                    if drains_here:
                        drain = drain_memo.get((rows, n_t))
                        if drain is None:
                            drain = engine.ofmap_drain_cycles(rows, n_t)
                            drain_memo[(rows, n_t)] = drain
                    else:
                        drain = 0.0
                    occupancy = occupancy_memo.get((rows, k_t, n_t))
                    if occupancy is None:
                        occupancy = tile_occupancy_cycles(
                            rows, k_t, n_t, config, first=False
                        )
                        occupancy_memo[(rows, k_t, n_t)] = occupancy
                    fills.append(fill)
                    gemms.append(occupancy)
                    drains.append(drain)
                    macs.append(rows * k_t * n_t)
        return (
            np.array(fills, dtype=np.float64),
            np.array(gemms, dtype=np.float64),
            np.array(drains, dtype=np.float64),
            np.array(macs, dtype=np.int64),
        )

    templates = {rows: template(rows) for rows in set(rows_sequence)}
    schedule = _assemble_blocks(templates, rows_sequence)
    if len(schedule) and groups:
        # Only the schedule's very first tile exposes the systolic skew.
        first_k = min(array_rows, groups[0].merged_k)
        first_n = min(array_cols, spec.c_out)
        schedule.gemm_cycles[0] = tile_occupancy_cycles(
            rows_sequence[0], first_k, first_n, config, first=True
        )
    return schedule


def channel_first_schedule_arrays(
    spec: ConvSpec,
    config: TPUConfig,
    engine: Optional[FillEngine] = None,
    group_size: Optional[int] = None,
    layout: Layout = Layout.NHWC,
) -> ScheduleArrays:
    """Vectorized twin of :func:`repro.systolic.scheduler.channel_first_schedule`."""
    engine = engine if engine is not None else FillEngine(config)
    if group_size is None:
        group_size = tpu_multi_tile_policy(spec, config.array_rows)
    groups = plan_multi_tile(spec, group_size, row_aligned=True)
    return conv_schedule_arrays_from_groups(
        spec, config, engine, groups, group_size, layout=layout
    )


def gemm_schedule_arrays(
    shape: GemmShape, config: TPUConfig, engine: Optional[FillEngine] = None
) -> ScheduleArrays:
    """Vectorized twin of :func:`repro.systolic.scheduler.gemm_schedule`."""
    global _CONSTRUCTION_COUNT
    _CONSTRUCTION_COUNT += 1
    if trace.enabled():
        trace.counter("schedule.constructions", 1, cat="schedule")
    engine = engine if engine is not None else FillEngine(config)
    array_rows, array_cols = config.array_rows, config.array_cols
    elem = config.compute_elem_bytes
    budget = config.unified_sram_bytes // 4
    k_chunks = [
        min(array_rows, shape.k - k0) for k0 in range(0, shape.k, array_rows)
    ]
    per_row = max(k_chunks) * elem
    capacity_rows = max(1, budget // per_row)
    pipeline_rows = max(MIN_BLOCK_ROWS, -(-shape.m // MIN_PIPELINE_BLOCKS))
    m_block = max(1, min(shape.m, capacity_rows, pipeline_rows))
    n_blocks = -(-shape.m // m_block)
    rows_sequence = [m_block] * (n_blocks - 1) + [shape.m - m_block * (n_blocks - 1)]

    weight_fill_memo: dict = {}
    occupancy_memo: dict = {}
    drain_memo: dict = {}
    a_fill_memo: dict = {}

    def template(rows: int):
        fills: List[float] = []
        gemms: List[float] = []
        drains: List[float] = []
        macs: List[int] = []
        for k0 in range(0, shape.k, array_rows):
            k_t = min(array_rows, shape.k - k0)
            a_fill = a_fill_memo.get((rows, k_t))
            if a_fill is None:
                a_fill = engine.gemm_a_fill_cycles(rows, k_t)
                a_fill_memo[(rows, k_t)] = a_fill
            drains_here = k0 + k_t >= shape.k
            first = True
            for n0 in range(0, shape.n, array_cols):
                n_t = min(array_cols, shape.n - n0)
                fill = weight_fill_memo.get((k_t, n_t))
                if fill is None:
                    fill = engine.weight_fill_cycles(k_t, n_t)
                    weight_fill_memo[(k_t, n_t)] = fill
                if first:
                    fill = fill + a_fill
                    first = False
                if drains_here:
                    drain = drain_memo.get((rows, n_t))
                    if drain is None:
                        drain = engine.ofmap_drain_cycles(rows, n_t)
                        drain_memo[(rows, n_t)] = drain
                else:
                    drain = 0.0
                occupancy = occupancy_memo.get((rows, k_t, n_t))
                if occupancy is None:
                    occupancy = tile_occupancy_cycles(rows, k_t, n_t, config, first=False)
                    occupancy_memo[(rows, k_t, n_t)] = occupancy
                fills.append(fill)
                gemms.append(occupancy)
                drains.append(drain)
                macs.append(rows * k_t * n_t)
        return (
            np.array(fills, dtype=np.float64),
            np.array(gemms, dtype=np.float64),
            np.array(drains, dtype=np.float64),
            np.array(macs, dtype=np.int64),
        )

    templates = {rows: template(rows) for rows in set(rows_sequence)}
    schedule = _assemble_blocks(templates, rows_sequence)
    if len(schedule):
        first_n = min(array_cols, shape.n)
        schedule.gemm_cycles[0] = tile_occupancy_cycles(
            rows_sequence[0], k_chunks[0], first_n, config, first=True
        )
    return schedule
