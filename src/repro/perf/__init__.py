"""Performance layer: vectorized schedules + simulation memoization.

Two orthogonal accelerations for the whole evaluation harness, both with a
bit-exactness contract against the per-item reference paths:

- :mod:`repro.perf.schedule_arrays` — struct-of-arrays schedules
  (:class:`ScheduleArrays`) built and executed with NumPy instead of
  per-tile Python objects;
- :mod:`repro.perf.cache` — a process-wide memo for simulation results,
  keyed by structural fingerprints of configs and problem specs.

See DESIGN.md ("Performance architecture") for the invariants.
"""

from .cache import (
    CacheStats,
    SIM_CACHE,
    SimulationCache,
    cache_stats,
    canonical_layout,
    canonical_spec,
    clear_cache,
    config_key,
    fingerprint,
    memoized_model,
    set_cache_enabled,
    spec_key,
)
from .schedule_arrays import (
    ScheduleArrays,
    channel_first_schedule_arrays,
    conv_schedule_arrays_from_groups,
    execute_multi_array_schedule,
    execute_schedule_arrays,
    gemm_schedule_arrays,
    pipeline_free_times,
    pipeline_free_times_segmented,
    schedule_construction_count,
)
from .batch import (
    BatchPricer,
    conv_schedule_batch,
    execute_schedule_batch,
    gemm_schedule_batch,
)

__all__ = [
    "CacheStats",
    "SIM_CACHE",
    "SimulationCache",
    "cache_stats",
    "canonical_layout",
    "canonical_spec",
    "clear_cache",
    "config_key",
    "fingerprint",
    "memoized_model",
    "set_cache_enabled",
    "spec_key",
    "ScheduleArrays",
    "channel_first_schedule_arrays",
    "conv_schedule_arrays_from_groups",
    "execute_multi_array_schedule",
    "execute_schedule_arrays",
    "gemm_schedule_arrays",
    "pipeline_free_times",
    "pipeline_free_times_segmented",
    "schedule_construction_count",
    "BatchPricer",
    "conv_schedule_batch",
    "execute_schedule_batch",
    "gemm_schedule_batch",
]
