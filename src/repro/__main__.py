"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``experiments [ids...] [--quick] [--jobs N] [--trace [PATH]]`` —
  regenerate the paper's tables/figures (same as
  ``python -m repro.harness.runner``).
- ``simulate-conv`` — time one conv layer on TPUSim and the V100 model.
- ``simulate-network <name> [--batch N] [--platform tpu|gpu]`` — a whole CNN.
- ``sweep-stride`` — the stride study for one layer across all paths.
- ``list-networks`` — the available workload tables.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.conv_spec import ConvSpec
from .gpu.channel_first import channel_first_conv_time
from .gpu.channel_last import channel_last_conv_time
from .gpu.config import V100
from .gpu.blocked_gemm import gemm_kernel_time
from .systolic.simulator import TPUSim
from .workloads.networks import network, network_names


def _add_conv_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--batch", type=int, default=8)
    parser.add_argument("--c-in", type=int, default=128)
    parser.add_argument("--size", type=int, default=28, help="input H=W")
    parser.add_argument("--c-out", type=int, default=128)
    parser.add_argument("--filter", type=int, default=3)
    parser.add_argument("--stride", type=int, default=1)
    parser.add_argument("--padding", type=int, default=None)
    parser.add_argument("--dilation", type=int, default=1)


def _spec_from_args(args) -> ConvSpec:
    padding = args.padding if args.padding is not None else args.filter // 2
    return ConvSpec(
        n=args.batch, c_in=args.c_in, h_in=args.size, w_in=args.size,
        c_out=args.c_out, h_filter=args.filter, w_filter=args.filter,
        stride=args.stride, padding=padding, dilation=args.dilation,
        name="cli",
    )


def cmd_experiments(args) -> int:
    from .harness.runner import main as runner_main

    argv: List[str] = list(args.ids)
    if args.quick:
        argv.append("--quick")
    if args.jobs != 1:
        argv.extend(["--jobs", str(args.jobs)])
    if args.cache_stats:
        argv.append("--cache-stats")
    if args.trace is not None:
        argv.extend(["--trace", args.trace])
    return runner_main(argv)


def cmd_simulate_conv(args) -> int:
    spec = _spec_from_args(args)
    print(spec.describe())
    tpu = TPUSim().simulate_conv(spec)
    print(f"TPU-v2: {tpu.cycles:,.0f} cycles, {tpu.tflops:.2f} TFLOPS, "
          f"utilization {tpu.utilization:.0%}, multi-tile={tpu.group_size}")
    gpu = channel_first_conv_time(spec, V100)
    print(f"V100:   {gpu.seconds * 1e6:.1f} us, {gpu.tflops:.1f} TFLOPS, "
          f"bound={gpu.kernel.bound}")
    return 0


def cmd_simulate_network(args) -> int:
    layers = network(args.name, args.batch)
    if args.platform == "tpu":
        sim = TPUSim()
        net = sim.simulate_network(args.name, layers)
        print(f"{args.name} (batch {args.batch}) on TPU-v2: "
              f"{net.latency_s(sim.config.clock_ghz) * 1e3:.2f} ms, "
              f"{net.tflops(sim.config.clock_ghz):.1f} TFLOPS")
    else:
        total = sum(channel_first_conv_time(layer, V100).seconds for layer in layers)
        macs = sum(layer.macs for layer in layers)
        print(f"{args.name} (batch {args.batch}) on V100: {total * 1e3:.2f} ms, "
              f"{2 * macs / total / 1e12:.1f} TFLOPS")
    return 0


def cmd_sweep_stride(args) -> int:
    base = _spec_from_args(args)
    sim = TPUSim()
    print(f"{'stride':>6} {'TPU CF':>8} {'GPU CF':>8} {'GPU CL':>8} {'GEMM':>8}  (TFLOPS)")
    for stride in (1, 2, 4):
        spec = base.with_stride(stride)
        tpu = sim.simulate_conv(spec).tflops
        cf = channel_first_conv_time(spec, V100).tflops
        cl = channel_last_conv_time(spec, V100).tflops
        gemm = gemm_kernel_time(spec.gemm_shape(), V100).tflops
        print(f"{stride:>6} {tpu:>8.1f} {cf:>8.1f} {cl:>8.1f} {gemm:>8.1f}")
    return 0


def cmd_list_networks(args) -> int:
    for name in network_names():
        layers = network(name, 1)
        gflops = sum(2 * layer.macs for layer in layers) / 1e9
        print(f"{name:>10}: {len(layers):>3} conv layers, {gflops:6.1f} GFLOPs/image")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("experiments", help="regenerate the paper's tables/figures")
    p.add_argument("ids", nargs="*")
    p.add_argument("--quick", action="store_true")
    p.add_argument("--jobs", type=int, default=1)
    p.add_argument("--cache-stats", action="store_true")
    p.add_argument(
        "--trace",
        nargs="?",
        const="trace.json",
        default=None,
        metavar="PATH",
        help="write Chrome trace JSON to PATH (default trace.json) and print "
        "a cycle-accounting summary",
    )
    p.set_defaults(func=cmd_experiments)

    p = sub.add_parser("simulate-conv", help="time one conv layer on both platforms")
    _add_conv_args(p)
    p.set_defaults(func=cmd_simulate_conv)

    p = sub.add_parser("simulate-network", help="time a whole CNN")
    p.add_argument("name")
    p.add_argument("--batch", type=int, default=8)
    p.add_argument("--platform", choices=("tpu", "gpu"), default="tpu")
    p.set_defaults(func=cmd_simulate_network)

    p = sub.add_parser("sweep-stride", help="stride study for one layer")
    _add_conv_args(p)
    p.set_defaults(func=cmd_sweep_stride)

    p = sub.add_parser("list-networks", help="available workload tables")
    p.set_defaults(func=cmd_list_networks)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
