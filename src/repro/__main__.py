"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``run [ids...] [--all] [--quick] [--jobs N] [--trace [PATH]] [--profile]
  [--log-level L] [--log-file PATH] [--quiet] [--export-dir DIR]
  [--checkpoint] [--resume RUN_ID] [--task-timeout S] [--max-retries N]
  [--inject-faults SPEC] [--audit off|cheap|full]`` —
  regenerate the paper's tables/figures with full run-level observability,
  fault tolerance and (``--audit``) runtime invariant auditing
  (``experiments`` is the legacy spelling; both forward to
  ``python -m repro.harness.runner``).
- ``simulate-conv`` — time one conv layer on TPUSim and the V100 model.
- ``simulate-network <name> [--batch N] [--platform tpu|gpu]`` — a whole CNN.
- ``sweep-stride`` — the stride study for one layer across all paths.
- ``list-networks`` — the available workload tables.
- ``sentinel`` — the perf-regression gate over ``BENCH_history.jsonl`` and
  the trace goldens (same engine as ``tools/check_regression.py``).
- ``serve [--port P] [--store DIR] [--workers N]`` — a long-lived,
  crash-only asyncio daemon answering ConvSpec timing queries over
  HTTP/JSON: in-flight dedup, engine batching, supervised pre-forked
  workers, per-request deadlines, per-spec circuit breakers, an SLO
  degradation ladder, 429/503 + ``Retry-After`` load shedding,
  ``/healthz`` + ``/readyz`` + ``/metrics``
  (see :mod:`repro.store.serve` and :mod:`repro.store.workers`).
- ``store verify|stats|compact DIR`` — integrity-scan (``verify
  --quarantine`` moves corrupt records into ``<store>/quarantine/`` and
  exits 0 once healed), describe, or LRU-compact a persistent result
  store (``run --store DIR`` creates one; see :mod:`repro.store`).
- ``dse sweep|status|replay`` — resilient distributed design-space
  exploration: lease-based sharded sweep with adaptive Pareto refinement,
  poison-task quarantine and a crash-safe, byte-reproducible frontier
  artifact (see :mod:`repro.dse`).
- ``fuzz [--specs N] [--seed S] [--corpus DIR] [--inject-faults SPEC]`` —
  run random conv specs under full audit; failures are shrunk to minimal
  reproducers and appended crash-safely to ``tests/audit/corpus/``.
- ``top (--status-file PATH | --url URL) [--once] [--interval S]
  [--plain]`` — live ops console over a runner's/server's status beacon
  (see :mod:`repro.obs.flight.top`).
- ``report [ids...] [--goldens DIR] [-o PATH] [--html] [--top N]`` —
  Fig 2a-style bottleneck attribution (compute / lowering overhead /
  DRAM-bound, roofline placement) from the golden cycle snapshots
  (see :mod:`repro.harness.attribution`).

Every command accepts ``--log-level``/``--log-file``/``--quiet``
(structured logging, see :mod:`repro.obs.log`) and ``--manifest`` (write a
``results/<run_id>/manifest.json`` provenance record for the invocation).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.conv_spec import ConvSpec
from .gpu.channel_first import channel_first_conv_time
from .gpu.channel_last import channel_last_conv_time
from .gpu.config import V100
from .gpu.blocked_gemm import gemm_kernel_time
from .obs import log as obs_log
from .obs.sentinel import add_sentinel_args, run_sentinel
from .systolic.simulator import TPUSim
from .workloads.networks import network, network_names


def _add_conv_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--batch", type=int, default=8)
    parser.add_argument("--c-in", type=int, default=128)
    parser.add_argument("--size", type=int, default=28, help="input H=W")
    parser.add_argument("--c-out", type=int, default=128)
    parser.add_argument("--filter", type=int, default=3)
    parser.add_argument("--stride", type=int, default=1)
    parser.add_argument("--padding", type=int, default=None)
    parser.add_argument("--dilation", type=int, default=1)


def _spec_from_args(args) -> ConvSpec:
    padding = args.padding if args.padding is not None else args.filter // 2
    return ConvSpec(
        n=args.batch, c_in=args.c_in, h_in=args.size, w_in=args.size,
        c_out=args.c_out, h_filter=args.filter, w_filter=args.filter,
        stride=args.stride, padding=padding, dilation=args.dilation,
        name="cli",
    )


def _obs_parent() -> argparse.ArgumentParser:
    """Observability options shared by every subcommand."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--log-level",
        choices=sorted(obs_log.LEVELS, key=obs_log.LEVELS.get),
        default=obs_log.DEFAULT_LEVEL,
        help="stderr diagnostics threshold (default: warning)",
    )
    parent.add_argument(
        "--log-file", default=None, metavar="PATH",
        help="append structured JSONL events to PATH",
    )
    parent.add_argument(
        "--quiet", action="store_true",
        help="suppress rendered output (artifacts still written)",
    )
    parent.add_argument(
        "--manifest", action="store_true",
        help="write results/<run_id>/manifest.json for this invocation",
    )
    return parent


def _runner_argv(args) -> List[str]:
    """Translate parsed run/experiments args back into runner argv."""
    argv: List[str] = list(args.ids)
    if args.quick:
        argv.append("--quick")
    if args.jobs != 1:
        argv.extend(["--jobs", str(args.jobs)])
    if args.cache_stats:
        argv.append("--cache-stats")
    if args.trace is not None:
        argv.extend(["--trace", args.trace])
    if args.export_dir is not None:
        argv.extend(["--export-dir", args.export_dir])
    if getattr(args, "profile", False):
        argv.append("--profile")
    if args.log_level != obs_log.DEFAULT_LEVEL:
        argv.extend(["--log-level", args.log_level])
    if args.log_file is not None:
        argv.extend(["--log-file", args.log_file])
    if args.quiet:
        argv.append("--quiet")
    if args.manifest:
        argv.append("--manifest")
    if getattr(args, "results_dir", "results") != "results":
        argv.extend(["--results-dir", args.results_dir])
    if getattr(args, "checkpoint", False):
        argv.append("--checkpoint")
    if getattr(args, "resume", None) is not None:
        argv.extend(["--resume", args.resume])
    if getattr(args, "run_id", None) is not None:
        argv.extend(["--run-id", args.run_id])
    if getattr(args, "task_timeout", None) is not None:
        argv.extend(["--task-timeout", str(args.task_timeout)])
    if getattr(args, "max_retries", None) is not None:
        argv.extend(["--max-retries", str(args.max_retries)])
    if getattr(args, "inject_faults", None) is not None:
        argv.extend(["--inject-faults", args.inject_faults])
    if getattr(args, "audit", "off") != "off":
        argv.extend(["--audit", args.audit])
    if getattr(args, "store", None) is not None:
        argv.extend(["--store", args.store])
    if getattr(args, "flight", False):
        argv.append("--flight")
    if getattr(args, "status_file", None) is not None:
        argv.extend(["--status-file", args.status_file])
    return argv


def cmd_experiments(args) -> int:
    from .harness.runner import main as runner_main

    return runner_main(_runner_argv(args))


def cmd_simulate_conv(args) -> int:
    spec = _spec_from_args(args)
    obs_log.info("cli.simulate_conv", spec=spec.describe())
    obs_log.console(spec.describe())
    tpu = TPUSim().simulate_conv(spec)
    obs_log.console(
        f"TPU-v2: {tpu.cycles:,.0f} cycles, {tpu.tflops:.2f} TFLOPS, "
        f"utilization {tpu.utilization:.0%}, multi-tile={tpu.group_size}"
    )
    gpu = channel_first_conv_time(spec, V100)
    obs_log.console(
        f"V100:   {gpu.seconds * 1e6:.1f} us, {gpu.tflops:.1f} TFLOPS, "
        f"bound={gpu.kernel.bound}"
    )
    return 0


def cmd_simulate_network(args) -> int:
    layers = network(args.name, args.batch)
    obs_log.info(
        "cli.simulate_network", network=args.name, batch=args.batch,
        platform=args.platform, layers=len(layers),
    )
    if args.platform == "tpu":
        sim = TPUSim()
        net = sim.simulate_network(args.name, layers)
        obs_log.console(
            f"{args.name} (batch {args.batch}) on TPU-v2: "
            f"{net.latency_s(sim.config.clock_ghz) * 1e3:.2f} ms, "
            f"{net.tflops(sim.config.clock_ghz):.1f} TFLOPS"
        )
    else:
        total = sum(channel_first_conv_time(layer, V100).seconds for layer in layers)
        macs = sum(layer.macs for layer in layers)
        obs_log.console(
            f"{args.name} (batch {args.batch}) on V100: {total * 1e3:.2f} ms, "
            f"{2 * macs / total / 1e12:.1f} TFLOPS"
        )
    return 0


def cmd_sweep_stride(args) -> int:
    base = _spec_from_args(args)
    sim = TPUSim()
    obs_log.console(
        f"{'stride':>6} {'TPU CF':>8} {'GPU CF':>8} {'GPU CL':>8} {'GEMM':>8}  (TFLOPS)"
    )
    for stride in (1, 2, 4):
        spec = base.with_stride(stride)
        tpu = sim.simulate_conv(spec).tflops
        cf = channel_first_conv_time(spec, V100).tflops
        cl = channel_last_conv_time(spec, V100).tflops
        gemm = gemm_kernel_time(spec.gemm_shape(), V100).tflops
        obs_log.debug(
            "cli.sweep_stride.point", stride=stride, tpu_tflops=round(tpu, 3),
            gpu_cf_tflops=round(cf, 3), gpu_cl_tflops=round(cl, 3),
        )
        obs_log.console(f"{stride:>6} {tpu:>8.1f} {cf:>8.1f} {cl:>8.1f} {gemm:>8.1f}")
    return 0


def cmd_list_networks(args) -> int:
    for name in network_names():
        layers = network(name, 1)
        gflops = sum(2 * layer.macs for layer in layers) / 1e9
        obs_log.console(
            f"{name:>10}: {len(layers):>3} conv layers, {gflops:6.1f} GFLOPs/image"
        )
    return 0


def cmd_sentinel(args) -> int:
    return run_sentinel(args=args)


def cmd_serve(args) -> int:
    from .store.serve import serve_main

    argv = ["--host", args.host, "--port", str(args.port),
            "--max-pending", str(args.max_pending),
            "--batch-window", str(args.batch_window),
            "--max-batch", str(args.max_batch),
            "--workers", str(args.workers),
            "--default-deadline-ms", str(args.default_deadline_ms),
            "--breaker-threshold", str(args.breaker_threshold),
            "--breaker-cooldown", str(args.breaker_cooldown),
            "--slo-p99-ms", str(args.slo_p99_ms),
            "--slo-error-ratio", str(args.slo_error_ratio)]
    if args.no_watchdog:
        argv.append("--no-watchdog")
    if args.inject_faults:
        argv.extend(["--inject-faults", args.inject_faults])
    if args.store:
        argv.extend(["--store", args.store])
    if args.run_id:
        argv.extend(["--run-id", args.run_id])
    if args.log_file:
        argv.extend(["--log-file", args.log_file])
    if args.trace is not None:
        argv.extend(["--trace", args.trace])
    if args.status_file:
        argv.extend(["--status-file", args.status_file])
    if args.flight:
        argv.extend(["--flight", args.flight])
    return serve_main(argv)


def cmd_top(args) -> int:
    from .obs.flight.top import top_main

    argv: List[str] = []
    if args.status_file:
        argv.extend(["--status-file", args.status_file])
    if args.url:
        argv.extend(["--url", args.url])
    if args.once:
        argv.append("--once")
    if args.interval != 1.0:
        argv.extend(["--interval", str(args.interval)])
    if args.plain:
        argv.append("--plain")
    return top_main(argv)


def cmd_report(args) -> int:
    from .harness.attribution import report_main

    argv: List[str] = list(args.experiments)
    if args.goldens != "tests/trace/goldens":
        argv.extend(["--goldens", args.goldens])
    if args.output:
        argv.extend(["-o", args.output])
    if args.html:
        argv.append("--html")
    if args.top:
        argv.extend(["--top", str(args.top)])
    return report_main(argv)


def cmd_store(args) -> int:
    from .store import ResultStore

    store = ResultStore(args.dir)
    if args.store_command == "verify":
        report = store.verify(quarantine=getattr(args, "quarantine", False))
        quarantined = set(report.quarantined)
        for problem in report.problems:
            obs_log.console(f"CORRUPT {problem.path}: {problem.reason}")
        for moved in report.quarantined:
            obs_log.console(f"QUARANTINED -> {moved}")
        obs_log.console(
            f"store verify: {report.ok}/{report.scanned} records ok, "
            f"{len(report.problems)} problem(s) at {store.root}"
            + (f", {len(quarantined)} moved to quarantine/" if quarantined else "")
        )
        # --quarantine heals the store: corrupt records are out of the
        # serving tree, so a fully-healed scan exits 0.
        if report.clean or (report.problems and report.healed):
            return 0
        return 1
    if args.store_command == "stats":
        info = store.describe()
        obs_log.console(
            f"store at {info['root']}: {info['entries']} records in "
            f"{info['shards']} shard(s), {info['bytes']:,} bytes "
            f"(schema {info['schema']})"
        )
        return 0
    if args.store_command == "compact":
        report = store.compact(
            max_entries=args.max_entries, max_bytes=args.max_bytes
        )
        obs_log.console(
            f"store compact: kept {report.kept}, removed {report.removed} "
            f"of {report.scanned} records "
            f"({report.bytes_before:,} -> {report.bytes_after:,} bytes)"
        )
        return 0
    raise AssertionError(f"unhandled store command {args.store_command!r}")


def cmd_fuzz(args) -> int:
    from .audit.fuzz import run_fuzz

    obs_log.info(
        "cli.fuzz", specs=args.specs, seed=args.seed, corpus=args.corpus,
        inject_faults=args.inject_faults,
    )
    report = run_fuzz(
        specs=args.specs,
        seed=args.seed,
        corpus_dir=args.corpus,
        shrink=not args.no_shrink,
        write_corpus=not args.no_corpus,
        inject_faults=args.inject_faults,
        log=obs_log.console,
    )
    return 1 if report.violations else 0


def _add_runner_options(p: argparse.ArgumentParser) -> None:
    p.add_argument("ids", nargs="*")
    p.add_argument("--all", action="store_true", dest="run_all",
                   help="run every experiment (same as passing no ids)")
    p.add_argument("--quick", action="store_true")
    p.add_argument("--jobs", type=int, default=1)
    p.add_argument("--cache-stats", action="store_true")
    p.add_argument(
        "--trace",
        nargs="?",
        const="trace.json",
        default=None,
        metavar="PATH",
        help="write Chrome trace JSON to PATH (default trace.json) and print "
        "a cycle-accounting summary",
    )
    p.add_argument("--export-dir", default=None)
    p.add_argument("--profile", action="store_true",
                   help="per-experiment wall/CPU/allocation hotspot table")
    p.add_argument("--results-dir", default="results",
                   help="directory for <run_id>/ observability artifacts")
    p.add_argument("--checkpoint", action="store_true",
                   help="journal completed experiments for crash recovery")
    p.add_argument("--resume", default=None, metavar="RUN_ID",
                   help="resume a checkpointed run, skipping journaled work")
    p.add_argument("--run-id", default=None, metavar="RUN_ID",
                   help="pin the run id (default: generated)")
    p.add_argument("--task-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="per-experiment wall-clock limit under --jobs")
    p.add_argument("--max-retries", type=int, default=None, metavar="N",
                   help="transient-fault retries per experiment (default 2)")
    p.add_argument("--inject-faults", default=None, metavar="SPEC",
                   help="deterministic fault injection spec, e.g. "
                   "'seed=7,crash@1,dram-drop=0.01'")
    p.add_argument("--audit", choices=("off", "cheap", "full"), default="off",
                   help="runtime invariant auditing ('full' adds per-layer "
                   "cross-model differential checks; default off)")
    p.add_argument("--store", default=None, metavar="DIR",
                   help="persistent on-disk result store backing the "
                   "simulation cache (shared across processes and runs)")
    p.add_argument("--flight", action="store_true",
                   help="flight recorder: dump recent spans/logs to "
                   "results/<run_id>/ on faults, timeouts and SIGUSR1")
    p.add_argument("--status-file", default=None, metavar="PATH",
                   help="status beacon JSON for `repro top --status-file`")
    p.set_defaults(func=cmd_experiments)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    obs_parent = _obs_parent()

    p = sub.add_parser(
        "run", parents=[obs_parent],
        help="regenerate the paper's tables/figures (with observability)",
    )
    _add_runner_options(p)

    p = sub.add_parser(
        "experiments", parents=[obs_parent],
        help="legacy alias of `run`",
    )
    _add_runner_options(p)

    p = sub.add_parser(
        "simulate-conv", parents=[obs_parent],
        help="time one conv layer on both platforms",
    )
    _add_conv_args(p)
    p.set_defaults(func=cmd_simulate_conv)

    p = sub.add_parser(
        "simulate-network", parents=[obs_parent], help="time a whole CNN"
    )
    p.add_argument("name")
    p.add_argument("--batch", type=int, default=8)
    p.add_argument("--platform", choices=("tpu", "gpu"), default="tpu")
    p.set_defaults(func=cmd_simulate_network)

    p = sub.add_parser(
        "sweep-stride", parents=[obs_parent], help="stride study for one layer"
    )
    _add_conv_args(p)
    p.set_defaults(func=cmd_sweep_stride)

    p = sub.add_parser(
        "list-networks", parents=[obs_parent], help="available workload tables"
    )
    p.set_defaults(func=cmd_list_networks)

    p = sub.add_parser(
        "sentinel", parents=[obs_parent],
        help="perf-drift + golden bit-exactness regression gate",
    )
    add_sentinel_args(p)
    p.set_defaults(func=cmd_sentinel)

    p = sub.add_parser(
        "serve", parents=[obs_parent],
        help="serve conv-timing queries over HTTP/JSON (asyncio daemon "
        "with request dedup, batching, load shedding and /metrics)",
    )
    from .store.serve import ServeConfig as _ServeDefaults

    defaults = _ServeDefaults()
    p.add_argument("--host", default=defaults.host)
    p.add_argument("--port", type=int, default=defaults.port,
                   help=f"listen port (default {defaults.port}; 0 = ephemeral)")
    p.add_argument("--store", default="", metavar="DIR",
                   help="persistent result store to warm-start from")
    p.add_argument("--max-pending", type=int, default=defaults.max_pending,
                   help="pending-query budget before 429 load shedding")
    p.add_argument("--batch-window", type=float,
                   default=defaults.batch_window_s, metavar="S",
                   help="coalescing window before each engine batch")
    p.add_argument("--max-batch", type=int, default=defaults.max_batch,
                   help="queries per simulate_conv_batch call at most")
    p.add_argument("--workers", type=int, default=defaults.workers,
                   help="pre-forked request workers behind a supervising "
                   "parent (default 1 = single process)")
    p.add_argument("--default-deadline-ms", type=float,
                   default=defaults.default_deadline_ms, metavar="MS",
                   help="per-request deadline when no X-Repro-Deadline-Ms "
                   "header arrives")
    p.add_argument("--breaker-threshold", type=int,
                   default=defaults.breaker_threshold,
                   help="failures that trip a spec fingerprint's circuit "
                   "breaker (fast 422 afterwards)")
    p.add_argument("--breaker-cooldown", type=float,
                   default=defaults.breaker_cooldown_s, metavar="S",
                   help="seconds an open breaker refuses before half-opening")
    p.add_argument("--slo-p99-ms", type=float, default=defaults.slo_p99_ms,
                   help="p99 latency above which the degradation ladder "
                   "escalates")
    p.add_argument("--slo-error-ratio", type=float,
                   default=defaults.slo_error_ratio,
                   help="error ratio above which the ladder escalates")
    p.add_argument("--no-watchdog", action="store_true",
                   help="disable the SLO watchdog (degradation rung moves "
                   "only explicitly)")
    p.add_argument("--inject-faults", default=None, metavar="SPEC",
                   help="seeded chaos plan, e.g. 'serve=conn-reset,"
                   "worker-crash,rate=0.05,seed=7,poison=hostile'")
    p.add_argument("--run-id", default=None, metavar="RUN_ID",
                   help="pin the daemon's run id (default: generated)")
    p.add_argument("--trace", nargs="?", const="serve-trace.json",
                   default=None, metavar="PATH",
                   help="record request/batch spans; Chrome trace written "
                   "to PATH on drain (default serve-trace.json)")
    p.add_argument("--status-file", default=None, metavar="PATH",
                   help="status beacon JSON for `repro top --status-file`")
    p.add_argument("--flight", default=None, metavar="DIR",
                   help="flight-recorder dumps (faults, SIGUSR1) into DIR")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "store", parents=[obs_parent],
        help="inspect/maintain a persistent result store "
        "(verify | stats | compact)",
    )
    store_sub = p.add_subparsers(dest="store_command", required=True)
    for name, text in (
        ("verify", "full integrity scan; exit 1 if any record is corrupt"),
        ("stats", "record/shard/byte counts of the store"),
        ("compact", "LRU-evict records beyond --max-entries/--max-bytes"),
    ):
        sp = store_sub.add_parser(name, parents=[obs_parent], help=text)
        sp.add_argument("dir", help="store directory")
        if name == "verify":
            sp.add_argument("--quarantine", action="store_true",
                            help="move corrupt records into <store>/"
                            "quarantine/ and exit 0 once the store reads "
                            "clean (the read path recomputes them)")
        if name == "compact":
            sp.add_argument("--max-entries", type=int, default=None,
                            help="records to keep at most (newest first)")
            sp.add_argument("--max-bytes", type=int, default=None,
                            help="total record bytes to keep at most")
        sp.set_defaults(func=cmd_store)

    from .dse.cli import add_dse_parser

    add_dse_parser(sub, obs_parent)

    p = sub.add_parser(
        "fuzz", parents=[obs_parent],
        help="fuzz random conv specs under full audit; shrink failures "
        "into tests/audit/corpus/",
    )
    p.add_argument("--specs", type=int, default=200,
                   help="number of random specs to run (default 200)")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed; same seed => same specs and shrinks")
    p.add_argument("--corpus", default="tests/audit/corpus", metavar="DIR",
                   help="directory receiving minimal reproducers "
                   "(default tests/audit/corpus)")
    p.add_argument("--no-shrink", action="store_true",
                   help="record failing specs as found, without minimising")
    p.add_argument("--no-corpus", action="store_true",
                   help="report failures without writing corpus files")
    p.add_argument("--inject-faults", default=None, metavar="SPEC",
                   help="fault-injection spec active during the campaign, "
                   "e.g. 'audit-break=tpu.macs.conservation' to prove the "
                   "catch->shrink->corpus pipeline")
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser(
        "top", parents=[obs_parent],
        help="live ops console over a runner's/server's status beacon",
    )
    source = p.add_mutually_exclusive_group(required=True)
    source.add_argument("--status-file", default=None, metavar="PATH",
                        help="beacon file written by --status-file runs")
    source.add_argument("--url", default=None, metavar="URL",
                        help="base URL of a serve daemon (/statusz is polled)")
    p.add_argument("--once", action="store_true",
                   help="print one snapshot and exit (for scripts/CI)")
    p.add_argument("--interval", type=float, default=1.0, metavar="S",
                   help="refresh period (default 1s)")
    p.add_argument("--plain", action="store_true",
                   help="line-oriented output instead of the curses screen")
    p.set_defaults(func=cmd_top)

    p = sub.add_parser(
        "report", parents=[obs_parent],
        help="Fig 2a-style bottleneck attribution from golden snapshots",
    )
    p.add_argument("experiments", nargs="*",
                   help="golden experiment ids (default: fig13)")
    p.add_argument("--goldens", default="tests/trace/goldens", metavar="DIR",
                   help="directory holding <experiment>.json goldens")
    p.add_argument("-o", "--output", default=None, metavar="PATH",
                   help="write the report here instead of stdout")
    p.add_argument("--html", action="store_true",
                   help="emit a self-contained HTML page")
    p.add_argument("--top", type=int, default=0, metavar="N",
                   help="table rows per experiment (0 = all workloads)")
    p.set_defaults(func=cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.func is cmd_experiments:
        # The runner owns its observability lifecycle (it also has --profile
        # and worker processes to coordinate); just forward the flags.
        return args.func(args)
    obs_active = args.log_file is not None or args.manifest
    obs_log.configure(
        level=args.log_level, log_file=args.log_file, quiet=args.quiet
    )
    if not obs_active:
        try:
            return args.func(args)
        finally:
            obs_log.shutdown()
    from .obs.manifest import RunContext

    exit_code = 1
    try:
        with RunContext(
            tool=f"repro.{args.command}",
            results_dir="results" if args.manifest else None,
            args={"command": args.command},
        ) as run_ctx:
            obs_log.get_state().run_id = run_ctx.run_id
            exit_code = args.func(args)
            run_ctx.manifest.exit_code = exit_code
    finally:
        obs_log.shutdown()
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
