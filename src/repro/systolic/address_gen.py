"""Skewed address generation for the channel-first schedule (Sec. IV-A).

The TPU avoids physically skewing the data layout: each of the 128 vector
memories gets its own address stream, and the streams are identical except
delayed by one cycle per PE row — "instead of skewing the data layout, we
skew the address generation".

For a decomposed-filter tile ``<r, s>`` of a conv, the *logical* (unskewed)
address stream visits the tile's taps in output-raster order; every PE row
(= channel, or channel-slice under multi-tile) reads the same within-memory
offsets because the HWC(N) layout places corresponding elements of every
channel at the same offset of their respective memories.  This module
produces:

- :func:`tile_word_offsets` — the per-memory word-offset sequence for one
  tile (shared by all memories), assuming the tile's taps were packed into
  the memory in fill order;
- :func:`skewed_schedule` — the (cycle, memory, word_offset) triples after
  applying the one-cycle-per-row skew and the once-per-``word_elems``-cycles
  serializer cadence;
- :class:`AddressGenerator` — an iterator facade the cycle-accurate
  simulator drives.

A key property the tests pin: the address streams are *identical across
memories modulo delay* — this is what makes the hardware a plain counter
per memory rather than a crossbar.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Tuple

from ..core.channel_first import DecomposedFilter
from ..core.conv_spec import ConvSpec

__all__ = ["tile_word_offsets", "skewed_schedule", "AddressGenerator"]


def tile_word_offsets(spec: ConvSpec, word_elems: int, batch_in_word: bool = True) -> List[int]:
    """Word offsets one vector memory reads for one decomposed-filter tile.

    With the HWCN layout (Sec. IV-A), a memory stores one channel of the
    IFMap for ``word_elems`` batch inputs: element ``(n, oy, ox)`` of the
    tile lives at word ``(oy * W_O + ox)`` when batches pack the word
    (``batch_in_word=True``), so the serializer drains a word's worth of
    batches between port reads.  Without batch packing each element occupies
    a word lane by itself and the offset advances every ``word_elems`` taps.

    The sequence is *independent of the tile's (r, s)* by construction — the
    fill engine packs each tile's taps contiguously — which is why one
    counter design serves every tile shape, stride and dilation: stride
    complexity lives entirely in the DMA fill, not in the array-facing
    address stream.
    """
    if word_elems <= 0:
        raise ValueError("word_elems must be positive")
    taps = spec.h_out * spec.w_out
    if batch_in_word:
        # One word per spatial tap; batches fill the word lanes.
        return list(range(taps))
    # Lanes hold consecutive taps instead.
    total = taps
    return [i // word_elems for i in range(total)]


@dataclasses.dataclass(frozen=True)
class ScheduledAccess:
    """One port access: memory ``row`` reads ``word_offset`` at ``cycle``."""

    cycle: int
    row: int
    word_offset: int


def skewed_schedule(
    offsets: List[int], rows: int, word_elems: int
) -> List[ScheduledAccess]:
    """Apply the systolic skew and serializer cadence to an offset stream.

    Row ``k`` performs its ``i``-th port read at cycle
    ``i * word_elems + k``: reads are ``word_elems`` apart (the serializer
    covers the gap) and rows are offset by the one-cycle systolic delay.
    The port-conflict-freedom property — no memory is accessed twice in one
    cycle — holds trivially since each row owns its memory.
    """
    if rows <= 0 or word_elems <= 0:
        raise ValueError("rows/word_elems must be positive")
    schedule = []
    for k in range(rows):
        for i, off in enumerate(offsets):
            schedule.append(ScheduledAccess(cycle=i * word_elems + k, row=k, word_offset=off))
    schedule.sort(key=lambda a: (a.cycle, a.row))
    return schedule


class AddressGenerator:
    """Per-row offset iterator with skew, as a reusable component.

    ``next_access(cycle)`` returns the word offset row ``row`` must read at
    ``cycle``, or ``None`` when the serializer still holds data (or the
    stream is exhausted / not yet started due to skew).
    """

    def __init__(self, offsets: List[int], row: int, word_elems: int):
        if row < 0 or word_elems <= 0:
            raise ValueError("row must be >= 0 and word_elems positive")
        self._offsets = list(offsets)
        self._row = row
        self._word_elems = word_elems

    def next_access(self, cycle: int):
        phase = cycle - self._row
        if phase < 0 or phase % self._word_elems != 0:
            return None
        index = phase // self._word_elems
        if index >= len(self._offsets):
            return None
        return self._offsets[index]

    def total_port_reads(self) -> int:
        return len(self._offsets)

    def finish_cycle(self) -> int:
        """Cycle after which this row issues no further port reads."""
        if not self._offsets:
            return self._row
        return (len(self._offsets) - 1) * self._word_elems + self._row
