"""Weight-stationary systolic array: cycle-accurate model + closed-form cycles.

Two fidelity levels, as described in DESIGN.md:

- :class:`CycleAccurateArray` simulates the PE grid register-by-register,
  cycle-by-cycle.  It exists to validate the *dataflow*: inputs enter each
  row skewed by one cycle (exactly what the TPU's per-row address generators
  produce, Sec. IV-A), partial sums ripple down the columns, and outputs
  emerge skewed from the bottom edge.  It is used at small scale (the Fig 10
  / Fig 11 worked examples and the tests); its numerics are checked against
  plain matrix multiplication.

- :func:`gemm_tile_cycles` / :func:`gemm_cycles` give the closed-form cycle
  counts the event-driven layer simulator uses: per weight tile, the array is
  busy for ``weight_load + M + K_t + N_t + setup`` cycles (load the
  stationary tile, stream M rows, fill/drain the pipeline).  The cycle-exact
  model's counts match the closed form exactly for single tiles — a test
  asserts this — which is what licenses using the closed form at scale.

Dataflow conventions (matching Fig 9/10 of the paper):

- The array computes ``C[M,N] = A[M,K] @ B[K,N]`` with ``B`` stationary:
  PE(k, n) holds ``B[k, n]``.
- ``A`` enters from the left edge: row ``k`` of the array consumes the
  stream ``A[0,k], A[1,k], ...``, delayed by ``k`` cycles (the skew).
- Partial sums flow downward; column ``n`` emits ``C[m, n]`` from the bottom
  edge at cycle ``m + K + n`` (0-indexed, counting from the first input
  cycle after weights are loaded).
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Tuple

import numpy as np

from .config import TPUConfig

__all__ = ["CycleAccurateArray", "TileCycles", "gemm_tile_cycles", "gemm_cycles"]


class CycleAccurateArray:
    """Register-level weight-stationary array of ``rows x cols`` PEs.

    Usage::

        arr = CycleAccurateArray(rows=4, cols=4)
        cycles = arr.load_weights(B)         # B is (K, N), K<=rows, N<=cols
        C, compute_cycles = arr.run(A)       # A is (M, K)

    ``run`` executes the whole pipeline (skewed injection, ripple, skewed
    drain) and returns the exact cycle count from first input to last output.
    """

    def __init__(self, rows: int, cols: int):
        if rows <= 0 or cols <= 0:
            raise ValueError("array dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self._weights: np.ndarray = None
        self._k = 0
        self._n = 0

    def load_weights(self, b: np.ndarray) -> int:
        """Install a stationary tile; returns weight-load cycles (= K rows).

        Real hardware shifts the tile in row-by-row from the top, occupying
        the array for K cycles; we install it instantly but charge K cycles.
        """
        if b.ndim != 2:
            raise ValueError(f"weights must be 2-D, got shape {b.shape}")
        k, n = b.shape
        if k > self.rows or n > self.cols:
            raise ValueError(f"tile {b.shape} exceeds array {self.rows}x{self.cols}")
        self._weights = b.astype(np.float64)
        self._k, self._n = k, n
        return k

    def run(self, a: np.ndarray) -> Tuple[np.ndarray, int]:
        """Stream ``A`` (M, K) through the loaded tile; return (C, cycles).

        The simulation advances global cycles; at cycle ``t`` row ``k``
        ingests ``A[t - k, k]`` (the skew).  Each PE(k, n) holds an input
        register and forwards its partial-sum downward every cycle.  Output
        ``C[m, n]`` is captured at the bottom of column ``n`` on cycle
        ``m + K + n``; the de-serialisers de-skew it.  Cycle count is the
        drain cycle of the last output: ``(M - 1) + K + (N_t - 1) + 1``.
        """
        if self._weights is None:
            raise RuntimeError("load_weights must be called before run")
        if a.ndim != 2 or a.shape[1] != self._k:
            raise ValueError(f"A shape {a.shape} incompatible with K={self._k}")
        a = a.astype(np.float64)
        m = a.shape[0]
        k, n = self._k, self._n
        # Per-PE state: input register (value flowing right) and psum register
        # (value flowing down).  We only simulate the occupied k x n corner.
        input_reg = np.zeros((k, n))
        input_valid = np.zeros((k, n), dtype=bool)
        psum_reg = np.zeros((k, n))
        psum_valid = np.zeros((k, n), dtype=bool)
        out = np.zeros((m, n))
        total_cycles = (m - 1) + k + (n - 1) + 1
        for t in range(total_cycles):
            # Capture bottom-edge outputs *before* the shift: the psum leaving
            # row k-1 at cycle t is C[t - k - n_col + ... ]; concretely column
            # n_col emits C[mm, n_col] at cycle mm + k + n_col - 1 (post-update
            # capture below uses t directly).
            # 1. Shift psums down and inputs right (top/left inject new data).
            new_input = np.zeros_like(input_reg)
            new_input_valid = np.zeros_like(input_valid)
            new_psum = np.zeros_like(psum_reg)
            new_psum_valid = np.zeros_like(psum_valid)
            # inputs move right
            new_input[:, 1:] = input_reg[:, :-1]
            new_input_valid[:, 1:] = input_valid[:, :-1]
            # left edge injection with skew: row kk reads A[t - kk, kk]
            for kk in range(k):
                mm = t - kk
                if 0 <= mm < m:
                    new_input[kk, 0] = a[mm, kk]
                    new_input_valid[kk, 0] = True
            # psums move down (row 0 receives zero-valid when its input is valid)
            new_psum[1:, :] = psum_reg[:-1, :]
            new_psum_valid[1:, :] = psum_valid[:-1, :]
            # 2. MAC: every PE with a valid input adds input*weight to the
            # psum passing through it this cycle.
            mac_mask = new_input_valid
            new_psum = np.where(mac_mask, new_psum + new_input * self._weights, new_psum)
            new_psum_valid = new_psum_valid | mac_mask
            # 3. Bottom edge: the psum in row k-1 after this cycle's MAC is a
            # completed C element (it has accumulated all k taps).
            for nn in range(n):
                if new_psum_valid[k - 1, nn]:
                    mm = t - (k - 1) - nn
                    if 0 <= mm < m:
                        out[mm, nn] = new_psum[k - 1, nn]
            input_reg, input_valid = new_input, new_input_valid
            psum_reg, psum_valid = new_psum, new_psum_valid
        return out, total_cycles


@dataclasses.dataclass(frozen=True)
class TileCycles:
    """Cycle breakdown of one stationary-weight tile's execution."""

    weight_load: float
    stream: float
    pipeline: float
    setup: float

    @property
    def total(self) -> float:
        return self.weight_load + self.stream + self.pipeline + self.setup


def gemm_tile_cycles(m: int, k_t: int, n_t: int, config: TPUConfig) -> TileCycles:
    """Closed-form cycles for one ``(k_t x n_t)`` tile streaming ``m`` rows.

    ``weight_load = k_t`` (tile shifts in row by row), ``stream = m`` (one
    input row per cycle in steady state), ``pipeline = k_t + n_t - 1``
    (fill + drain skew), plus fixed per-tile setup.  Matches
    :class:`CycleAccurateArray` exactly: ``run`` returns
    ``m + k_t + n_t - 1`` and ``load_weights`` returns ``k_t``.
    """
    if m <= 0 or k_t <= 0 or n_t <= 0:
        raise ValueError("tile dims must be positive")
    if k_t > config.array_rows or n_t > config.array_cols:
        raise ValueError(
            f"tile {k_t}x{n_t} exceeds array {config.array_rows}x{config.array_cols}"
        )
    return TileCycles(
        weight_load=k_t * config.weight_load_cycles_per_row,
        stream=float(m),
        pipeline=float(k_t + n_t - 1),
        setup=config.tile_setup_cycles,
    )


def gemm_cycles(m: int, k: int, n: int, config: TPUConfig) -> float:
    """Compute-side cycles for a full GEMM tiled over the stationary array.

    K and N are split into array-sized stationary tiles; every tile streams
    all M rows.  Weight loads for tile ``i+1`` cannot overlap tile ``i``'s
    streaming in the baseline TPU-v2 model (single weight path), so tiles
    serialise.  Memory time is handled by the caller (DMA overlap model).
    """
    if m <= 0 or k <= 0 or n <= 0:
        raise ValueError("GEMM dims must be positive")
    total = 0.0
    for k0 in range(0, k, config.array_rows):
        k_t = min(config.array_rows, k - k0)
        for n0 in range(0, n, config.array_cols):
            n_t = min(config.array_cols, n - n0)
            total += gemm_tile_cycles(m, k_t, n_t, config).total
    return total
