"""TPUSim: a configurable cycle-level simulator of a TPU-v2-like core
(128x128 weight-stationary systolic array, 128 vector memories, HBM), plus
the channel-first implicit im2col schedule that runs convs on it."""

from .config import TPUConfig, TPU_V2
from .systolic_array import CycleAccurateArray, TileCycles, gemm_cycles, gemm_tile_cycles
from .vector_memory import FunctionalVectorMemory, PortAccounting, VectorMemoryModel
from .address_gen import AddressGenerator, skewed_schedule, tile_word_offsets
from .dma import FillEngine
from .scheduler import (
    ScheduleResult,
    WorkItem,
    channel_first_schedule,
    execute_schedule,
    gemm_schedule,
    ifmap_rows_per_block,
)
from .simulator import LayerResult, NetworkResult, TPUSim
from .energy import EnergyBreakdown, EnergyModel
from .channel_last_schedule import channel_last_tpu_schedule, simulate_conv_channel_last
from .multicore import MultiCoreResult, scaling_efficiency, simulate_conv_multicore
from .network_scheduler import (
    ResidencyDecision,
    plan_residency,
    residency_traffic_saved_bytes,
    simulate_network_resident,
)
from .dual_mxu import port_budget_allows, simulate_conv_dual_mxu
from .sparse_schedule import simulate_conv_sparse, sparse_channel_first_schedule
from .explicit_schedule import ExplicitTPUResult, simulate_conv_explicit_tpu
from .functional_pipeline import FunctionalPipeline, PipelineStats, run_fig10_example
from .vector_unit import (
    batchnorm_cycles,
    pooling_cycles,
    skew_restore_cycles,
    skewed_layout_overhead,
)

__all__ = [
    "TPUConfig",
    "TPU_V2",
    "CycleAccurateArray",
    "TileCycles",
    "gemm_cycles",
    "gemm_tile_cycles",
    "FunctionalVectorMemory",
    "PortAccounting",
    "VectorMemoryModel",
    "AddressGenerator",
    "skewed_schedule",
    "tile_word_offsets",
    "FillEngine",
    "ScheduleResult",
    "WorkItem",
    "channel_first_schedule",
    "execute_schedule",
    "gemm_schedule",
    "ifmap_rows_per_block",
    "LayerResult",
    "NetworkResult",
    "TPUSim",
    "EnergyBreakdown",
    "EnergyModel",
    "channel_last_tpu_schedule",
    "simulate_conv_channel_last",
    "MultiCoreResult",
    "scaling_efficiency",
    "simulate_conv_multicore",
    "FunctionalPipeline",
    "PipelineStats",
    "run_fig10_example",
    "ExplicitTPUResult",
    "ResidencyDecision",
    "plan_residency",
    "residency_traffic_saved_bytes",
    "simulate_network_resident",
    "simulate_conv_sparse",
    "sparse_channel_first_schedule",
    "port_budget_allows",
    "simulate_conv_dual_mxu",
    "simulate_conv_explicit_tpu",
    "batchnorm_cycles",
    "pooling_cycles",
    "skew_restore_cycles",
    "skewed_layout_overhead",
]
