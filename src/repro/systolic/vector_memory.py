"""The TPU's vector memories: 128 independent single-port SRAM arrays.

Sec. IV-A's three hardware ideas live here:

1. **One memory per PE row** — no crossbar.  Each memory holds (a channel of)
   the IFMap rows its PE row consumes, plus OFMap space.
2. **Serializer**: a memory read returns a ``word_elems``-wide word; a
   serializer register issues one element per cycle to the PE row, so the
   memory's read port is only occupied once every ``word_elems`` cycles.
3. **De-serializer**: OFMap results arrive from the array bottom every cycle;
   a de-serializer packs ``word_elems`` of them and writes once per
   ``word_elems`` cycles, interleaving with reads on the single port.

:class:`VectorMemoryModel` does the *port-occupancy accounting* that yields
the Fig 16b "SRAM bandwidth idle ratio": during steady-state conv execution
each memory's port is busy ``(reads + writes)`` once-per-word-each, i.e. a
fraction ``2 / word_elems`` of cycles (reads and writes interleave, never
colliding, exactly the paper's zero-contention argument — valid whenever
``word_elems >= 2``).  :class:`FunctionalVectorMemory` is the functional
counterpart used by the small-scale cycle-accurate simulation to check the
layout/addressing story end-to-end.
"""

from __future__ import annotations

import dataclasses
from typing import List

import numpy as np

from .config import TPUConfig

__all__ = ["PortAccounting", "VectorMemoryModel", "FunctionalVectorMemory"]


@dataclasses.dataclass(frozen=True)
class PortAccounting:
    """Port-occupancy summary for one steady-state execution window."""

    cycles: float
    read_accesses: float
    write_accesses: float

    @property
    def busy_fraction(self) -> float:
        """Fraction of cycles the single port is occupied."""
        if self.cycles <= 0:
            return 0.0
        return min(1.0, (self.read_accesses + self.write_accesses) / self.cycles)

    @property
    def idle_fraction(self) -> float:
        """The Fig 16b y-axis: unused fraction of the port's bandwidth."""
        return 1.0 - self.busy_fraction


class VectorMemoryModel:
    """Analytic model of one vector memory's port during conv execution."""

    def __init__(self, config: TPUConfig):
        self.config = config

    def steady_state_accounting(self, stream_cycles: float) -> PortAccounting:
        """Port accesses during ``stream_cycles`` of feeding the array.

        The serializer demands one word per ``word_elems`` cycles for IFMap
        reads; the de-serializer produces one word per ``word_elems`` cycles
        of OFMap writes.  Both are per-memory and interleave on the single
        port (Sec. IV-A's unified-memory trick).
        """
        if stream_cycles < 0:
            raise ValueError("stream_cycles must be non-negative")
        word = self.config.sram_word_elems
        return PortAccounting(
            cycles=stream_cycles,
            read_accesses=stream_cycles / word,
            write_accesses=stream_cycles / word,
        )

    def idle_ratio(self) -> float:
        """Steady-state port idle fraction: ``1 - 2 / word_elems``.

        At word size 8 this is 75% idle on the port; weighting by the fill
        and drain phases (where only one direction is active) the paper's
        "below 50% bandwidth utilisation at word 8" corresponds to the busy
        fraction ``2/word`` being < 0.5 for word >= 4.
        """
        return self.steady_state_accounting(1.0).idle_fraction

    def contention_free(self) -> bool:
        """Reads and writes can interleave without stalling iff the port is
        demanded at most once per cycle: ``2 / word_elems <= 1``."""
        return self.config.sram_word_elems >= 2

    def capacity_per_memory(self) -> int:
        return self.config.per_memory_bytes


class FunctionalVectorMemory:
    """A functional single-port word-addressed SRAM array with serializer.

    Stores words of ``word_elems`` elements.  ``read_word`` models the port
    access; ``pop_element`` models the serializer issuing one element per
    cycle.  The cycle-accurate conv example (tests for Fig 10) drives one of
    these per PE row and asserts the port is touched exactly once per word.
    """

    def __init__(self, word_elems: int, num_words: int):
        if word_elems <= 0 or num_words <= 0:
            raise ValueError("geometry must be positive")
        self.word_elems = word_elems
        self.num_words = num_words
        self._data = np.zeros((num_words, word_elems))
        self._serializer: List[float] = []
        self.port_accesses = 0

    def write_word(self, word_index: int, values: np.ndarray) -> None:
        if not (0 <= word_index < self.num_words):
            raise IndexError(f"word {word_index} out of range")
        values = np.asarray(values, dtype=float)
        if values.shape != (self.word_elems,):
            raise ValueError(f"expected {self.word_elems} values, got {values.shape}")
        self._data[word_index] = values
        self.port_accesses += 1

    def read_word(self, word_index: int) -> np.ndarray:
        if not (0 <= word_index < self.num_words):
            raise IndexError(f"word {word_index} out of range")
        self.port_accesses += 1
        return self._data[word_index].copy()

    def load_into_serializer(self, word_index: int) -> None:
        """One port access refills the serializer with a whole word."""
        self._serializer = list(self.read_word(word_index))

    def pop_element(self) -> float:
        """Serializer issues the next element to the PE row (no port access)."""
        if not self._serializer:
            raise RuntimeError("serializer empty — load_into_serializer first")
        return self._serializer.pop(0)

    @property
    def serializer_occupancy(self) -> int:
        return len(self._serializer)
