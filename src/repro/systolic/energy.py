"""Energy accounting for TPUSim (an extension beyond the paper's evaluation).

The paper's design arguments are implicitly energy arguments — the word-size
study (Fig 16b) prices SRAM *area*, and the whole point of implicit im2col is
avoiding data movement.  This module closes the loop with a per-layer energy
model so the design-space experiments can also report Joules:

    E = E_mac * MACs                                  (compute)
      + E_sram_access(word) * vector-memory accesses  (on-chip movement)
      + E_dram_per_byte * DRAM traffic                (off-chip movement)
      + P_static * cycles / f                         (leakage/clock)

Constants are 28-nm-class textbook numbers (Horowitz, ISSCC'14 scale):
~0.2 pJ/16-bit MAC, ~10-40 pJ/32 B SRAM word (from the calibrated
:class:`~repro.memory.sram.SRAMModel`), ~10 pJ/byte of HBM traffic.  The
absolute Joules are indicative; the *ratios* across layouts, word sizes and
schedules are the quantities the ablations assert on.
"""

from __future__ import annotations

import dataclasses

from ..core.conv_spec import ConvSpec
from ..memory.sram import SRAMModel
from .config import TPUConfig, TPU_V2
from .simulator import LayerResult

__all__ = ["EnergyBreakdown", "EnergyModel"]


@dataclasses.dataclass(frozen=True)
class EnergyBreakdown:
    """Joules spent by one layer, by component."""

    compute_j: float
    sram_j: float
    dram_j: float
    static_j: float

    @property
    def total_j(self) -> float:
        return self.compute_j + self.sram_j + self.dram_j + self.static_j

    def fraction(self, component: str) -> float:
        value = getattr(self, f"{component}_j")
        return value / self.total_j if self.total_j > 0 else 0.0


@dataclasses.dataclass(frozen=True)
class EnergyModel:
    """Energy constants + the config they apply to."""

    config: TPUConfig = TPU_V2
    mac_pj: float = 0.2  # per bf16 MAC (MAC + local register movement)
    dram_pj_per_byte: float = 10.0
    static_watts: float = 8.0  # leakage + clock tree for one core

    def sram_word_access_pj(self) -> float:
        """Energy of one vector-memory word access, from the macro model."""
        sram = SRAMModel(self.config.sram)
        return sram.access_energy_pj(self.config.sram_word_bytes)

    def layer_energy(self, spec: ConvSpec, result: LayerResult) -> EnergyBreakdown:
        """Price a simulated layer.

        Vector-memory accesses: during the ``compute_cycles`` the array
        streams, each of the active memories is read once and written once
        per ``word_elems`` cycles (Sec. IV-A's cadence); DRAM traffic is
        approximated by the compulsory volume plus multi-tile duplication
        (group_size re-stages of the IFMap region per decomposed pass is
        already folded into the simulator's DMA cycles, so we reconstruct
        bytes from them at the peak rate — a faithful inverse of the fill
        pricing).
        """
        cfg = self.config
        compute_j = self.mac_pj * 1e-12 * result.macs
        word_accesses = (
            2.0 * cfg.num_vector_memories * result.compute_cycles / cfg.sram_word_elems
        )
        sram_j = self.sram_word_access_pj() * 1e-12 * word_accesses
        dram_bytes = result.dma_cycles * cfg.hbm.bytes_per_cycle
        dram_j = self.dram_pj_per_byte * 1e-12 * dram_bytes
        seconds = result.cycles / (cfg.clock_ghz * 1e9)
        static_j = self.static_watts * seconds
        return EnergyBreakdown(
            compute_j=compute_j, sram_j=sram_j, dram_j=dram_j, static_j=static_j
        )

    def energy_per_mac_pj(self, spec: ConvSpec, result: LayerResult) -> float:
        """Total pJ per algorithmic MAC — the efficiency figure of merit."""
        if result.macs <= 0:
            raise ValueError("result has no MACs")
        return self.layer_energy(spec, result).total_j * 1e12 / result.macs
