"""DMA fill engine: prices DRAM <-> vector-memory transfers.

Sits between the HBM model and the tile scheduler.  Every quantity the
scheduler needs is expressed as "core cycles to move this tile":

- :meth:`FillEngine.ifmap_tile_fill_cycles` — filling the vector memories
  with one (multi-tile merged) channel-first input tile.  The run-length
  structure comes from the DRAM layout: under HWC the channel groups of
  consecutive taps coalesce into long runs; under CHW they fragment
  (Sec. III "DRAM Layout", Fig 7).
- :meth:`FillEngine.weight_fill_cycles` — staging a stationary weight tile.
- :meth:`FillEngine.ofmap_drain_cycles` — writing finished OFMap rows back.

The engine is deliberately stateless; double-buffering/overlap policy
belongs to the scheduler.
"""

from __future__ import annotations

import math

from ..audit import auditor as _audit
from ..core.conv_spec import ConvSpec
from ..core.layouts import Layout
from ..memory.dram import HBMModel, TransferStats
from .config import TPUConfig

__all__ = ["FillEngine"]


class FillEngine:
    """Prices tile movement for one TPU core."""

    def __init__(self, config: TPUConfig, hbm: HBMModel = None):
        self.config = config
        self.hbm = hbm if hbm is not None else HBMModel(config.hbm)

    # ------------------------------------------------------------ IFMap fills
    def ifmap_tile_fill_cycles(
        self,
        spec: ConvSpec,
        rows: int,
        group_size: int,
        layout: Layout = Layout.NHWC,
    ) -> float:
        """Cycles to fill the vector memories for ``rows`` output pixels of a
        ``group_size``-way merged channel-first tile.

        Payload: ``rows * C_I * group_size`` elements (multi-tile duplication
        included, Fig 11).  Run structure per layout:

        - HWC, stride 1: consecutive taps of a tile are adjacent pixels, so a
          whole tile row (``W_O * C_I`` elements) is one contiguous run.
        - HWC, stride > 1: each tap's ``C_I`` channel group is its own run.
        - CHW: runs never span channels — ``W_O`` elements (stride 1) or one
          element (stride > 1) per run.
        """
        if rows <= 0 or group_size <= 0:
            raise ValueError("rows and group_size must be positive")
        elem = self.config.compute_elem_bytes
        payload = rows * spec.c_in * group_size * elem
        # ``rows`` counts lowered-matrix rows (output pixels x batch); in the
        # HWC(N) DRAM layout the batch and channel dimensions of one spatial
        # tap are contiguous, so the run structure is per *spatial* tap.
        spatial_taps = max(1, math.ceil(rows / spec.n))
        tap_run_bytes = spec.c_in * spec.n * elem
        contiguous = spec.stride == 1 and spec.dilation == 1
        if layout in (Layout.NHWC, Layout.HWCN):
            if contiguous:
                runs = max(1, math.ceil(spatial_taps / spec.w_out))
            else:
                runs = spatial_taps
        elif layout in (Layout.NCHW, Layout.CHWN):
            # Channel-major: runs never span channels.
            if contiguous:
                runs = max(1, math.ceil(spatial_taps / spec.w_out)) * spec.c_in
            else:
                runs = spatial_taps * spec.c_in
        else:
            raise ValueError(f"unsupported layout {layout}")
        runs *= group_size  # each merged tile contributes its own run set
        # Touched address span: within an input row, taps are spaced
        # ``stride`` pixels apart, so the covering span is ~stride x the
        # payload; H-strided *rows* are skipped entirely and never touched,
        # so the H stride does not expand the span (clamped to the IFMap).
        span = min(
            spatial_taps * spec.stride * tap_run_bytes * group_size,
            spec.ifmap_bytes(elem) * group_size,
        )
        span = max(span, payload)
        cycles = self.hbm.transfer_cycles(
            TransferStats(bytes=payload, runs=runs, span_bytes=span)
        )
        if _audit.enabled():
            from ..audit import invariants as audit_invariants

            # The payload must stay within the im2col-expanded bound for the
            # rows being filled: g*C_I elements per lowered row, no more.
            _audit.check(
                "dma.fill.sane",
                payload == rows * spec.c_in * group_size * elem
                and payload <= spec.lowered_bytes(elem) * group_size
                and math.isfinite(cycles)
                and cycles > 0,
                expected=f"payload {rows * spec.c_in * group_size * elem} B, "
                f"finite positive cycles",
                actual=(payload, cycles),
                message="IFMap fill payload/cycles out of bounds",
                context=audit_invariants.fingerprint_context(
                    spec, self.config, rows=rows, group_size=group_size
                ),
            )
        return cycles

    def sliding_window_fill_cycles(self, spec: ConvSpec, rows: int) -> float:
        """Fill cost of the *channel-last* scheme for the same output rows.

        The channel-last implicit method stages the IFMap region covering the
        sliding windows of those rows; its size is governed by the **input**
        footprint, not the output count, so it does not shrink with stride —
        the asymmetry behind Fig 3/4.  Footprint per output row block:
        ``(rows/W_O * stride + H_F - stride)`` input rows of ``W_I * C_I``.
        """
        if rows <= 0:
            raise ValueError("rows must be positive")
        out_rows = max(1, math.ceil(rows / spec.w_out))
        in_rows = min(spec.h_in, (out_rows - 1) * spec.stride + spec.h_filter)
        payload = in_rows * spec.w_in * spec.c_in * self.config.compute_elem_bytes
        runs = in_rows  # one run per input row (HWC-contiguous within a row)
        return self.hbm.transfer_cycles(TransferStats(bytes=payload, runs=runs))

    # ----------------------------------------------------------- weights/OFMap
    def weight_fill_cycles(self, k: int, n: int) -> float:
        """Cycles to stage a ``k x n`` stationary weight tile from DRAM.

        Weights are stored pre-flattened (HWC-ordered rows), contiguous.
        """
        if k <= 0 or n <= 0:
            raise ValueError("weight tile dims must be positive")
        payload = k * n * self.config.compute_elem_bytes
        return self.hbm.contiguous_cycles(payload)

    def ofmap_drain_cycles(self, rows: int, cols: int) -> float:
        """Cycles to write ``rows x cols`` finished OFMap elements to DRAM.

        The de-serializers pack results HWC-contiguously, so the drain is a
        clean stream.
        """
        if rows <= 0 or cols <= 0:
            raise ValueError("OFMap tile dims must be positive")
        payload = rows * cols * self.config.compute_elem_bytes
        return self.hbm.contiguous_cycles(payload)

    # ------------------------------------------------------------- GEMM (A/B/C)
    def gemm_a_fill_cycles(self, m: int, k: int) -> float:
        """Stream an ``m x k`` A-panel (row-major contiguous)."""
        if m <= 0 or k <= 0:
            raise ValueError("panel dims must be positive")
        payload = m * k * self.config.compute_elem_bytes
        return self.hbm.contiguous_cycles(payload)
