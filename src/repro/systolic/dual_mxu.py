"""The TPU-v3 move: a second systolic array on the same vector memories.

Fig 16b's closing insight is that at word size 8 the vector-memory ports sit
>50% idle, and that "this insight explains why the TPUv3 chooses to add
another systolic array to leverage this extra vector memory bandwidth".
This module operationalises that observation:

- :func:`port_budget_allows` — the feasibility check: ``arrays`` MXUs fed
  from one set of vector memories demand ``2 * arrays / word_elems`` of each
  port; the design is contention-free while that is <= 1.  Word 8 admits up
  to 4 arrays; word 2 admits exactly one — the quantitative version of the
  paper's sentence.
- :func:`simulate_conv_dual_mxu` — timing with ``arrays`` MXUs splitting the
  schedule's work items round-robin while *sharing* the HBM interface: the
  compute side scales, the DMA side does not, so memory-bound layers stop
  scaling — which is also why TPU-v3 raised the HBM bandwidth alongside.
"""

from __future__ import annotations

import dataclasses
from typing import List

from ..audit import auditor as audit
from ..core.conv_spec import ConvSpec
from ..perf.cache import SIM_CACHE, config_key, spec_key
from ..perf import schedule_arrays as perf_schedules
from ..trace import metrics as trace_metrics
from ..trace import tracer as trace
from .config import TPUConfig, TPU_V2
from .scheduler import WorkItem, channel_first_schedule
from .simulator import LayerResult

__all__ = ["port_budget_allows", "simulate_conv_dual_mxu"]


def port_budget_allows(arrays: int, config: TPUConfig = TPU_V2) -> bool:
    """Can ``arrays`` MXUs share the vector memories without port contention?

    Each array demands one read and one write per memory per ``word_elems``
    cycles (Sec. IV-A's cadence), so the port budget is
    ``2 * arrays / word_elems <= 1``.
    """
    if arrays <= 0:
        raise ValueError(f"arrays must be positive, got {arrays}")
    return 2 * arrays / config.sram_word_elems <= 1.0


def _execute_multi_array(items: List[WorkItem], arrays: int) -> tuple:
    """Round-robin the items over ``arrays`` compute engines sharing one
    read and one write DMA channel.  Returns (total, compute_busy, dma_busy,
    macs)."""
    read_free = 0.0
    write_free = 0.0
    compute_free = [0.0] * arrays
    compute_busy = 0.0
    dma_busy = 0.0
    macs = 0
    for i, item in enumerate(items):
        engine = i % arrays
        read_free += item.fill_cycles
        dma_busy += item.fill_cycles
        start = max(compute_free[engine], read_free)
        compute_free[engine] = start + item.gemm_cycles
        compute_busy += item.gemm_cycles
        if item.drain_cycles:
            write_free = max(write_free, compute_free[engine]) + item.drain_cycles
            dma_busy += item.drain_cycles
        macs += item.macs
    total = max(max(compute_free), read_free, write_free)
    return total, compute_busy, dma_busy, macs


def simulate_conv_dual_mxu(
    spec: ConvSpec, arrays: int = 2, config: TPUConfig = TPU_V2
) -> LayerResult:
    """Timing with ``arrays`` MXUs sharing the vector memories and HBM.

    Raises if the word size cannot feed that many arrays — the feasibility
    constraint that makes word-8 special.
    """
    if not port_budget_allows(arrays, config):
        raise ValueError(
            f"word size {config.sram_word_elems} cannot feed {arrays} arrays "
            f"(port demand {2 * arrays / config.sram_word_elems:.2f} > 1)"
        )
    name = f"mxu-x{arrays}:{spec.describe()}"

    def compute() -> LayerResult:
        with trace.span("tpu.dual_mxu.simulate", layer=name, arrays=arrays):
            schedule = perf_schedules.channel_first_schedule_arrays(spec, config)
            total, compute_busy, dma_busy, macs = perf_schedules.execute_multi_array_schedule(
                schedule, arrays
            )
            return LayerResult(
                name=name,
                cycles=total,
                tflops=2 * spec.macs * config.clock_ghz / total / 1e3,
                utilization=spec.macs / (arrays * config.peak_macs_per_cycle * total),
                compute_cycles=compute_busy,
                dma_cycles=dma_busy,
                exposed_dma_cycles=max(0.0, total - compute_busy / arrays),
                macs=spec.macs,
            )

    key = ("tpu-multi-mxu", config_key(config), spec_key(spec), arrays)
    result = SIM_CACHE.get_or_compute(key, compute)
    if result.name != name:
        result = dataclasses.replace(result, name=name)
    # Post-cache so that cache hits are audited like fresh computations.
    if audit.enabled():
        from ..audit import invariants as audit_invariants

        audit_invariants.check_tpu_multi_mxu(spec, config, arrays, result)
    trace_metrics.record_layer("tpu.dual_mxu", result, key=key, arrays=arrays)
    return result
