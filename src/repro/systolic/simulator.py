"""TPUSim: the configurable cycle-level TPU simulator (Sec. VI, Tbl. II).

Public entry points:

- :meth:`TPUSim.simulate_conv` — timing of one CONV layer under the
  channel-first implicit im2col schedule (with the multi-tile policy).
- :meth:`TPUSim.simulate_gemm` — timing of a plain GEMM primitive.
- :meth:`TPUSim.simulate_network` — a whole network's conv layers.
- :meth:`TPUSim.run_functional_conv` — *functional* execution of a conv
  through the actual merged-GEMM tile sequence on the register-level
  :class:`~repro.systolic.systolic_array.CycleAccurateArray`, cross-checked
  against the numpy reference.  Used at small scale; it is the end-to-end
  proof that the schedule the timing model prices computes the right thing.

Timing results come from the event-driven two-resource pipeline in
:mod:`repro.systolic.scheduler`; see DESIGN.md ("Two fidelity levels").
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.channel_first import decompose
from ..core.conv_spec import ConvSpec, GemmShape
from ..core.layouts import Layout
from ..core.reference import direct_conv2d
from ..core.tiling import plan_multi_tile, tpu_multi_tile_policy
from ..perf.cache import (
    SIM_CACHE,
    canonical_layout,
    canonical_spec,
    config_key,
    spec_key,
)

# Module binding (not named imports): repro.perf.schedule_arrays imports the
# systolic scheduler back, so grabbing names here would break whichever
# package imports first.  The module object resolves cleanly either way.
from ..audit import auditor as audit
from ..errors import AuditFault
from ..perf import batch as perf_batch
from ..perf import schedule_arrays as perf_schedules
from ..trace import metrics as trace_metrics
from ..trace import tracer as trace
from .config import TPUConfig, TPU_V2
from .dma import FillEngine
from .scheduler import ScheduleResult
from .systolic_array import CycleAccurateArray

__all__ = ["LayerResult", "NetworkResult", "TPUSim"]


def _boundary_macs(value, label: str) -> int:
    """Cast a MAC total to ``int`` exactly once, at the simulator boundary.

    MAC counts are integral by construction; a fractional (or silently
    rounded ``float``) value here means some accumulation drifted — e.g. a
    sum carried through ``float64`` past 2**53.  Always on: one comparison
    per layer.
    """
    as_int = int(value)
    if as_int != value:
        raise AuditFault(
            f"non-integral MAC total at the simulator boundary for {label}",
            invariant="tpu.macs.integral",
            expected="an exact integer",
            actual=value,
        )
    return as_int


@dataclasses.dataclass(frozen=True)
class LayerResult:
    """Timing outcome for one layer (or one GEMM primitive)."""

    name: str
    cycles: float
    tflops: float
    utilization: float
    compute_cycles: float
    dma_cycles: float
    exposed_dma_cycles: float
    macs: int
    group_size: int = 1

    # Cycles are the unit of record (config-independent once produced);
    # seconds exist only through the explicit conversion below.
    def latency_s(self, clock_ghz: float) -> float:
        return self.cycles / (clock_ghz * 1e9)


@dataclasses.dataclass(frozen=True)
class NetworkResult:
    """Aggregate over a network's conv layers."""

    name: str
    layers: Sequence[LayerResult]

    @property
    def total_cycles(self) -> float:
        return sum(layer.cycles for layer in self.layers)

    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    def tflops(self, clock_ghz: float) -> float:
        if self.total_cycles <= 0:
            return 0.0
        return 2 * self.total_macs * clock_ghz / self.total_cycles / 1e3

    def latency_s(self, clock_ghz: float) -> float:
        return self.total_cycles / (clock_ghz * 1e9)


class TPUSim:
    """The simulator facade.

    One instance binds a :class:`TPUConfig`; experiments sweep configs by
    constructing new instances (cheap — all state lives in the config and
    the stateless fill engine).
    """

    def __init__(self, config: TPUConfig = TPU_V2):
        self.config = config
        self.engine = FillEngine(config)

    # ------------------------------------------------------------------ conv
    def simulate_conv(
        self,
        spec: ConvSpec,
        group_size: Optional[int] = None,
        layout: Layout = Layout.NHWC,
    ) -> LayerResult:
        """Timing of one conv layer under channel-first implicit im2col.

        ``group_size=None`` applies the inferred TPU policy
        ``MIN(array/C_I, W_F)``; pass an explicit value to sweep the
        parameter (Fig 14a).
        """
        resolved_group = (
            group_size
            if group_size is not None
            else tpu_multi_tile_policy(spec, self.config.array_rows)
        )
        name = spec.describe() or "conv"

        def compute() -> LayerResult:
            with trace.span("tpu.conv.simulate", layer=name, group_size=resolved_group):
                schedule = perf_schedules.channel_first_schedule_arrays(
                    spec, self.config, self.engine, group_size=resolved_group, layout=layout
                )
                outcome = perf_schedules.execute_schedule_arrays(schedule)
                return self._layer_result(name, spec.macs, outcome, resolved_group)

        key = ("tpu-conv", config_key(self.config), spec_key(spec), resolved_group, layout.value)
        result = SIM_CACHE.get_or_compute(
            key, compute, canonical_key=self._conv_canonical_key(spec, resolved_group, layout)
        )
        # Post-cache on purpose: cache hits (and stale/corrupt cache entries)
        # are audited exactly like fresh computations.
        return self._finish_conv_result(spec, result, key, resolved_group, layout)

    def _conv_canonical_key(
        self, spec: ConvSpec, resolved_group: int, layout: Layout
    ) -> tuple:
        """Symmetry-folded cache key: timing-equivalent specs share it.

        ``canonical_spec`` folds the spec's timing symmetries and
        ``canonical_layout`` folds the layout pairs that price identically
        (NHWC/HWCN, NCHW/CHWN).  The ``@c`` namespace also matches the one
        the residency scheduler publishes for its no-residency layers, so
        network-level and layer-level simulations share work.
        """
        canon, _ = canonical_spec(spec)
        return (
            "tpu-conv@c",
            config_key(self.config),
            spec_key(canon),
            resolved_group,
            canonical_layout(layout),
        )

    def _finish_conv_result(
        self,
        spec: ConvSpec,
        result: LayerResult,
        key: tuple,
        resolved_group: int,
        layout: Layout,
    ) -> LayerResult:
        """Relabel + audit + trace — the per-layer tail both paths share."""
        name = spec.describe() or "conv"
        if result.name != name:
            result = dataclasses.replace(result, name=name)
        if audit.enabled():
            from ..audit import invariants as audit_invariants

            audit_invariants.check_tpu_conv(
                spec, self.config, result,
                group_size=resolved_group, layout=layout,
            )
        if audit.full():
            from ..audit import differential as audit_differential

            audit_differential.verify_conv_layer(
                key, spec, self.config, self.engine, result,
                group_size=resolved_group, layout=layout,
            )
        trace_metrics.record_layer("tpu.conv", result, key=key)
        return result

    def simulate_conv_batch(
        self,
        specs: Sequence[ConvSpec],
        group_size: Optional[int] = None,
        layout: Layout = Layout.NHWC,
    ) -> List[LayerResult]:
        """Timing of many conv layers through the batched schedule engine.

        Per-layer results are bit-identical to :meth:`simulate_conv`, and
        the cache sees the identical hit/miss stream the per-layer loop
        would have produced (duplicates inside the batch count as hits);
        only the construction/pricing work is amortized across the batch
        (:mod:`repro.perf.batch`).
        """
        specs = list(specs)
        if not specs:
            return []
        cfg = config_key(self.config)
        entries = []  # (spec, resolved, key, cached_result_or_None, job_index)
        jobs: List[tuple] = []
        job_keys: List[tuple] = []
        pending: Dict[tuple, int] = {}
        alias_later: List[tuple] = []
        for spec in specs:
            resolved = (
                group_size
                if group_size is not None
                else tpu_multi_tile_policy(spec, self.config.array_rows)
            )
            key = ("tpu-conv", cfg, spec_key(spec), resolved, layout.value)
            canonical = self._conv_canonical_key(spec, resolved, layout)
            cached = None
            job = None
            if SIM_CACHE.enabled:
                found, value = SIM_CACHE.probe(key, canonical)
                if found:
                    cached = value
                else:
                    job = pending.get(key)
                    if job is not None:
                        SIM_CACHE.note_pending_hit()
                    else:
                        job = pending.get(canonical)
                        if job is not None:
                            SIM_CACHE.note_pending_hit(canonical=True)
                            # The per-layer loop's probe would have aliased
                            # this exact key; do the same once the job lands.
                            alias_later.append((key, canonical, job))
                    if job is None:
                        job = len(jobs)
                        pending[key] = job
                        pending.setdefault(canonical, job)
                        jobs.append((spec, resolved))
                        job_keys.append((key, canonical))
            else:
                job = len(jobs)
                jobs.append((spec, resolved))
                job_keys.append((key, canonical))
            entries.append((spec, resolved, key, cached, job))

        job_results: List[LayerResult] = []
        if jobs:
            with trace.span(
                "tpu.conv.batch", jobs=len(jobs), layers=len(specs)
            ):
                schedules = perf_batch.conv_schedule_batch(
                    jobs, self.config, self.engine, layout=layout
                )
                outcomes = perf_batch.execute_schedule_batch(schedules)
            for (spec, resolved), (key, canonical), outcome in zip(
                jobs, job_keys, outcomes
            ):
                result = self._layer_result(
                    spec.describe() or "conv", spec.macs, outcome, resolved
                )
                SIM_CACHE.store(key, result, canonical)
                job_results.append(result)
            for key, canonical, job in alias_later:
                SIM_CACHE.store(key, job_results[job], canonical)

        return [
            self._finish_conv_result(
                spec,
                cached if cached is not None else job_results[job],
                key,
                resolved,
                layout,
            )
            for spec, resolved, key, cached, job in entries
        ]

    def simulate_gemm_batch(
        self, shapes: Sequence[GemmShape], name: str = "gemm"
    ) -> List[LayerResult]:
        """Timing of many GEMM primitives through the batched engine.

        Bit-identical per shape to :meth:`simulate_gemm`, with the same
        cache accounting as the equivalent per-shape loop.
        """
        shapes = list(shapes)
        if not shapes:
            return []
        cfg = config_key(self.config)
        entries = []
        jobs: List[GemmShape] = []
        job_keys: List[tuple] = []
        pending: Dict[tuple, int] = {}
        for shape in shapes:
            key = ("tpu-gemm", cfg, shape.m, shape.n, shape.k)
            cached = None
            job = None
            if SIM_CACHE.enabled:
                found, value = SIM_CACHE.probe(key)
                if found:
                    cached = value
                else:
                    job = pending.get(key)
                    if job is not None:
                        SIM_CACHE.note_pending_hit()
                    else:
                        job = len(jobs)
                        pending[key] = job
                        jobs.append(shape)
                        job_keys.append(key)
            else:
                job = len(jobs)
                jobs.append(shape)
                job_keys.append(key)
            entries.append((shape, key, cached, job))

        job_results: List[LayerResult] = []
        if jobs:
            with trace.span("tpu.gemm.batch", jobs=len(jobs), shapes=len(shapes)):
                schedules = perf_batch.gemm_schedule_batch(
                    jobs, self.config, self.engine
                )
                outcomes = perf_batch.execute_schedule_batch(schedules)
            for shape, key, outcome in zip(jobs, job_keys, outcomes):
                result = self._layer_result(name, shape.macs, outcome, 1)
                SIM_CACHE.store(key, result)
                job_results.append(result)

        out: List[LayerResult] = []
        for shape, key, cached, job in entries:
            result = cached if cached is not None else job_results[job]
            if result.name != name:
                result = dataclasses.replace(result, name=name)
            if audit.enabled():
                from ..audit import invariants as audit_invariants

                audit_invariants.check_tpu_gemm(shape, self.config, result)
            if audit.full():
                from ..audit import differential as audit_differential

                audit_differential.verify_gemm_layer(
                    key, shape, self.config, self.engine, result
                )
            trace_metrics.record_layer("tpu.gemm", result, key=key)
            out.append(result)
        return out

    def simulate_gemm(self, shape: GemmShape, name: str = "gemm") -> LayerResult:
        """Timing of a plain GEMM primitive (Fig 13a, Fig 4 reference)."""

        def compute() -> LayerResult:
            with trace.span("tpu.gemm.simulate", gemm=name):
                outcome = perf_schedules.execute_schedule_arrays(
                    perf_schedules.gemm_schedule_arrays(shape, self.config, self.engine)
                )
                return self._layer_result(name, shape.macs, outcome, 1)

        key = ("tpu-gemm", config_key(self.config), shape.m, shape.n, shape.k)
        result = SIM_CACHE.get_or_compute(key, compute)
        if result.name != name:
            result = dataclasses.replace(result, name=name)
        if audit.enabled():
            from ..audit import invariants as audit_invariants

            audit_invariants.check_tpu_gemm(shape, self.config, result)
        if audit.full():
            from ..audit import differential as audit_differential

            audit_differential.verify_gemm_layer(
                key, shape, self.config, self.engine, result
            )
        trace_metrics.record_layer("tpu.gemm", result, key=key)
        return result

    def simulate_network(self, name: str, layers: Sequence[ConvSpec]) -> NetworkResult:
        layers = list(layers)
        with trace.span("tpu.network.simulate", network=name, layers=len(layers)):
            if all(type(layer) is ConvSpec for layer in layers):
                # Fast path: one batched construction + pricing pass for the
                # whole network (bit-identical per layer, same cache stream).
                results = self.simulate_conv_batch(layers)
            else:
                # Fallback for spec subclasses the batcher must not assume
                # anything about.
                results = [self.simulate_conv(layer) for layer in layers]
        return NetworkResult(name=name, layers=results)

    def _layer_result(
        self, name: str, true_macs: int, outcome: ScheduleResult, group_size: int
    ) -> LayerResult:
        """Assemble a result; TFLOPS counts *algorithmic* MACs (``true_macs``)
        over the simulated cycles, so padding/duplication inefficiency shows
        up as lost TFLOPS exactly as it does on real hardware."""
        cycles = outcome.total_cycles
        if not math.isfinite(cycles) or cycles < 0:
            raise AuditFault(
                f"non-finite or negative cycle count for {name}",
                invariant="tpu.cycles.finite",
                expected="a finite, non-negative float",
                actual=cycles,
            )
        macs = _boundary_macs(true_macs, name)
        tflops = (
            2 * macs * self.config.clock_ghz / cycles / 1e3 if cycles > 0 else 0.0
        )
        utilization = (
            macs / (self.config.peak_macs_per_cycle * cycles) if cycles > 0 else 0.0
        )
        return LayerResult(
            name=name,
            cycles=cycles,
            tflops=tflops,
            utilization=utilization,
            compute_cycles=outcome.compute_cycles,
            dma_cycles=outcome.dma_cycles,
            exposed_dma_cycles=outcome.exposed_dma_cycles,
            macs=macs,
            group_size=group_size,
        )

    # ------------------------------------------------------------ functional
    def run_functional_conv(
        self,
        spec: ConvSpec,
        ifmap: np.ndarray,
        weights: np.ndarray,
        group_size: Optional[int] = None,
        verify: bool = True,
    ) -> np.ndarray:
        """Execute a conv *functionally* through the scheduled tile sequence.

        Every multi-tile group's merged GEMM runs on the register-level
        weight-stationary array (split into array-sized K/N chunks), partial
        sums accumulate across groups exactly as the de-serializers would
        accumulate them in the vector memories, and the result is reshaped to
        the NCHW OFMap.  With ``verify=True`` the result is asserted equal to
        the direct-convolution reference.

        Intended for small shapes (it is register-level); the timing path is
        independent of this and scales to real layers.
        """
        from ..core.tiling import merged_gemm_operands

        group = (
            group_size
            if group_size is not None
            else tpu_multi_tile_policy(spec, self.config.array_rows)
        )
        groups = plan_multi_tile(spec, group, row_aligned=True)
        m = spec.lowered_rows()
        accumulator = np.zeros((m, spec.c_out))
        for grp in groups:
            a, b = merged_gemm_operands(ifmap, weights, spec, grp)
            merged_k = a.shape[1]
            for k0 in range(0, merged_k, self.config.array_rows):
                k_t = min(self.config.array_rows, merged_k - k0)
                for n0 in range(0, spec.c_out, self.config.array_cols):
                    n_t = min(self.config.array_cols, spec.c_out - n0)
                    array = CycleAccurateArray(self.config.array_rows, self.config.array_cols)
                    array.load_weights(b[k0 : k0 + k_t, n0 : n0 + n_t])
                    partial, _ = array.run(a[:, k0 : k0 + k_t])
                    accumulator[:, n0 : n0 + n_t] += partial
        ofmap = np.ascontiguousarray(
            accumulator.reshape(spec.n, spec.h_out, spec.w_out, spec.c_out).transpose(0, 3, 1, 2)
        )
        if verify:
            reference = direct_conv2d(ifmap, weights, spec)
            if not np.allclose(ofmap, reference):
                raise AssertionError(
                    f"functional simulation diverged from reference for {spec.describe()}"
                )
        return ofmap

    # -------------------------------------------------------------- breakdown
    def stride_sweep(self, spec: ConvSpec, strides: Sequence[int]) -> Dict[int, LayerResult]:
        """Convenience for Fig 4b: the same layer at several strides."""
        results = {}
        for stride in strides:
            results[stride] = self.simulate_conv(spec.with_stride(stride))
        return results
