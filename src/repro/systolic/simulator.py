"""TPUSim: the configurable cycle-level TPU simulator (Sec. VI, Tbl. II).

Public entry points:

- :meth:`TPUSim.simulate_conv` — timing of one CONV layer under the
  channel-first implicit im2col schedule (with the multi-tile policy).
- :meth:`TPUSim.simulate_gemm` — timing of a plain GEMM primitive.
- :meth:`TPUSim.simulate_network` — a whole network's conv layers.
- :meth:`TPUSim.run_functional_conv` — *functional* execution of a conv
  through the actual merged-GEMM tile sequence on the register-level
  :class:`~repro.systolic.systolic_array.CycleAccurateArray`, cross-checked
  against the numpy reference.  Used at small scale; it is the end-to-end
  proof that the schedule the timing model prices computes the right thing.

Timing results come from the event-driven two-resource pipeline in
:mod:`repro.systolic.scheduler`; see DESIGN.md ("Two fidelity levels").
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.channel_first import decompose
from ..core.conv_spec import ConvSpec, GemmShape
from ..core.layouts import Layout
from ..core.reference import direct_conv2d
from ..core.tiling import plan_multi_tile, tpu_multi_tile_policy
from ..perf.cache import SIM_CACHE, config_key, spec_key

# Module binding (not named imports): repro.perf.schedule_arrays imports the
# systolic scheduler back, so grabbing names here would break whichever
# package imports first.  The module object resolves cleanly either way.
from ..audit import auditor as audit
from ..errors import AuditFault
from ..perf import schedule_arrays as perf_schedules
from ..trace import metrics as trace_metrics
from ..trace import tracer as trace
from .config import TPUConfig, TPU_V2
from .dma import FillEngine
from .scheduler import ScheduleResult
from .systolic_array import CycleAccurateArray

__all__ = ["LayerResult", "NetworkResult", "TPUSim"]


def _boundary_macs(value, label: str) -> int:
    """Cast a MAC total to ``int`` exactly once, at the simulator boundary.

    MAC counts are integral by construction; a fractional (or silently
    rounded ``float``) value here means some accumulation drifted — e.g. a
    sum carried through ``float64`` past 2**53.  Always on: one comparison
    per layer.
    """
    as_int = int(value)
    if as_int != value:
        raise AuditFault(
            f"non-integral MAC total at the simulator boundary for {label}",
            invariant="tpu.macs.integral",
            expected="an exact integer",
            actual=value,
        )
    return as_int


@dataclasses.dataclass(frozen=True)
class LayerResult:
    """Timing outcome for one layer (or one GEMM primitive)."""

    name: str
    cycles: float
    tflops: float
    utilization: float
    compute_cycles: float
    dma_cycles: float
    exposed_dma_cycles: float
    macs: int
    group_size: int = 1

    # Cycles are the unit of record (config-independent once produced);
    # seconds exist only through the explicit conversion below.
    def latency_s(self, clock_ghz: float) -> float:
        return self.cycles / (clock_ghz * 1e9)


@dataclasses.dataclass(frozen=True)
class NetworkResult:
    """Aggregate over a network's conv layers."""

    name: str
    layers: Sequence[LayerResult]

    @property
    def total_cycles(self) -> float:
        return sum(layer.cycles for layer in self.layers)

    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    def tflops(self, clock_ghz: float) -> float:
        if self.total_cycles <= 0:
            return 0.0
        return 2 * self.total_macs * clock_ghz / self.total_cycles / 1e3

    def latency_s(self, clock_ghz: float) -> float:
        return self.total_cycles / (clock_ghz * 1e9)


class TPUSim:
    """The simulator facade.

    One instance binds a :class:`TPUConfig`; experiments sweep configs by
    constructing new instances (cheap — all state lives in the config and
    the stateless fill engine).
    """

    def __init__(self, config: TPUConfig = TPU_V2):
        self.config = config
        self.engine = FillEngine(config)

    # ------------------------------------------------------------------ conv
    def simulate_conv(
        self,
        spec: ConvSpec,
        group_size: Optional[int] = None,
        layout: Layout = Layout.NHWC,
    ) -> LayerResult:
        """Timing of one conv layer under channel-first implicit im2col.

        ``group_size=None`` applies the inferred TPU policy
        ``MIN(array/C_I, W_F)``; pass an explicit value to sweep the
        parameter (Fig 14a).
        """
        resolved_group = (
            group_size
            if group_size is not None
            else tpu_multi_tile_policy(spec, self.config.array_rows)
        )
        name = spec.describe() or "conv"

        def compute() -> LayerResult:
            with trace.span("tpu.conv.simulate", layer=name, group_size=resolved_group):
                schedule = perf_schedules.channel_first_schedule_arrays(
                    spec, self.config, self.engine, group_size=resolved_group, layout=layout
                )
                outcome = perf_schedules.execute_schedule_arrays(schedule)
                return self._layer_result(name, spec.macs, outcome, resolved_group)

        key = ("tpu-conv", config_key(self.config), spec_key(spec), resolved_group, layout.value)
        result = SIM_CACHE.get_or_compute(key, compute)
        if result.name != name:  # cached under another layer's label
            result = dataclasses.replace(result, name=name)
        # Post-cache on purpose: cache hits (and stale/corrupt cache entries)
        # are audited exactly like fresh computations.
        if audit.enabled():
            from ..audit import invariants as audit_invariants

            audit_invariants.check_tpu_conv(
                spec, self.config, result,
                group_size=resolved_group, layout=layout,
            )
        if audit.full():
            from ..audit import differential as audit_differential

            audit_differential.verify_conv_layer(
                key, spec, self.config, self.engine, result,
                group_size=resolved_group, layout=layout,
            )
        trace_metrics.record_layer("tpu.conv", result, key=key)
        return result

    def simulate_gemm(self, shape: GemmShape, name: str = "gemm") -> LayerResult:
        """Timing of a plain GEMM primitive (Fig 13a, Fig 4 reference)."""

        def compute() -> LayerResult:
            with trace.span("tpu.gemm.simulate", gemm=name):
                outcome = perf_schedules.execute_schedule_arrays(
                    perf_schedules.gemm_schedule_arrays(shape, self.config, self.engine)
                )
                return self._layer_result(name, shape.macs, outcome, 1)

        key = ("tpu-gemm", config_key(self.config), shape.m, shape.n, shape.k)
        result = SIM_CACHE.get_or_compute(key, compute)
        if result.name != name:
            result = dataclasses.replace(result, name=name)
        if audit.enabled():
            from ..audit import invariants as audit_invariants

            audit_invariants.check_tpu_gemm(shape, self.config, result)
        if audit.full():
            from ..audit import differential as audit_differential

            audit_differential.verify_gemm_layer(
                key, shape, self.config, self.engine, result
            )
        trace_metrics.record_layer("tpu.gemm", result, key=key)
        return result

    def simulate_network(self, name: str, layers: Sequence[ConvSpec]) -> NetworkResult:
        with trace.span("tpu.network.simulate", network=name, layers=len(layers)):
            results = [self.simulate_conv(layer) for layer in layers]
        return NetworkResult(name=name, layers=results)

    def _layer_result(
        self, name: str, true_macs: int, outcome: ScheduleResult, group_size: int
    ) -> LayerResult:
        """Assemble a result; TFLOPS counts *algorithmic* MACs (``true_macs``)
        over the simulated cycles, so padding/duplication inefficiency shows
        up as lost TFLOPS exactly as it does on real hardware."""
        cycles = outcome.total_cycles
        if not math.isfinite(cycles) or cycles < 0:
            raise AuditFault(
                f"non-finite or negative cycle count for {name}",
                invariant="tpu.cycles.finite",
                expected="a finite, non-negative float",
                actual=cycles,
            )
        macs = _boundary_macs(true_macs, name)
        tflops = (
            2 * macs * self.config.clock_ghz / cycles / 1e3 if cycles > 0 else 0.0
        )
        utilization = (
            macs / (self.config.peak_macs_per_cycle * cycles) if cycles > 0 else 0.0
        )
        return LayerResult(
            name=name,
            cycles=cycles,
            tflops=tflops,
            utilization=utilization,
            compute_cycles=outcome.compute_cycles,
            dma_cycles=outcome.dma_cycles,
            exposed_dma_cycles=outcome.exposed_dma_cycles,
            macs=macs,
            group_size=group_size,
        )

    # ------------------------------------------------------------ functional
    def run_functional_conv(
        self,
        spec: ConvSpec,
        ifmap: np.ndarray,
        weights: np.ndarray,
        group_size: Optional[int] = None,
        verify: bool = True,
    ) -> np.ndarray:
        """Execute a conv *functionally* through the scheduled tile sequence.

        Every multi-tile group's merged GEMM runs on the register-level
        weight-stationary array (split into array-sized K/N chunks), partial
        sums accumulate across groups exactly as the de-serializers would
        accumulate them in the vector memories, and the result is reshaped to
        the NCHW OFMap.  With ``verify=True`` the result is asserted equal to
        the direct-convolution reference.

        Intended for small shapes (it is register-level); the timing path is
        independent of this and scales to real layers.
        """
        from ..core.tiling import merged_gemm_operands

        group = (
            group_size
            if group_size is not None
            else tpu_multi_tile_policy(spec, self.config.array_rows)
        )
        groups = plan_multi_tile(spec, group, row_aligned=True)
        m = spec.lowered_rows()
        accumulator = np.zeros((m, spec.c_out))
        for grp in groups:
            a, b = merged_gemm_operands(ifmap, weights, spec, grp)
            merged_k = a.shape[1]
            for k0 in range(0, merged_k, self.config.array_rows):
                k_t = min(self.config.array_rows, merged_k - k0)
                for n0 in range(0, spec.c_out, self.config.array_cols):
                    n_t = min(self.config.array_cols, spec.c_out - n0)
                    array = CycleAccurateArray(self.config.array_rows, self.config.array_cols)
                    array.load_weights(b[k0 : k0 + k_t, n0 : n0 + n_t])
                    partial, _ = array.run(a[:, k0 : k0 + k_t])
                    accumulator[:, n0 : n0 + n_t] += partial
        ofmap = np.ascontiguousarray(
            accumulator.reshape(spec.n, spec.h_out, spec.w_out, spec.c_out).transpose(0, 3, 1, 2)
        )
        if verify:
            reference = direct_conv2d(ifmap, weights, spec)
            if not np.allclose(ofmap, reference):
                raise AssertionError(
                    f"functional simulation diverged from reference for {spec.describe()}"
                )
        return ofmap

    # -------------------------------------------------------------- breakdown
    def stride_sweep(self, spec: ConvSpec, strides: Sequence[int]) -> Dict[int, LayerResult]:
        """Convenience for Fig 4b: the same layer at several strides."""
        results = {}
        for stride in strides:
            results[stride] = self.simulate_conv(spec.with_stride(stride))
        return results
