"""Tile scheduling: turning conv/GEMM problems into timed work items.

A *work item* is one stationary-weight tile's worth of array work plus the
DMA it depends on.  The scheduler builds the item sequence for:

- :func:`channel_first_schedule` — the paper's algorithm on the TPU
  (Sec. IV): decomposed filters merged per the multi-tile policy, IFMap
  blocks sized to the vector-memory budget, HWC fills.
- :func:`gemm_schedule` — the plain GEMM primitive (used for Fig 13a
  validation and as the "GEMM-only" reference series in Fig 4).

The overlap model (:func:`execute_schedule`) is a two-resource pipeline —
one DMA engine, one systolic array — with double buffering: item ``i+1``'s
fill overlaps item ``i``'s compute; OFMap drains queue behind fills.  Per
tile this reduces to the paper's ``max(GEMM latency, SRAM fill latency)``
picture (Figs 3 and 8b) while also exposing the first fill and final drain.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional

from ..core.conv_spec import ConvSpec, GemmShape
from ..core.layouts import Layout
from ..core.tiling import plan_multi_tile, tpu_multi_tile_policy
from ..trace import tracer as trace
from .config import TPUConfig
from .dma import FillEngine
from .systolic_array import gemm_tile_cycles

__all__ = [
    "WorkItem",
    "ScheduleResult",
    "channel_first_schedule",
    "gemm_schedule",
    "execute_schedule",
    "ifmap_rows_per_block",
    "tile_occupancy_cycles",
]


def tile_occupancy_cycles(
    rows: int, k_t: int, n_t: int, config: TPUConfig, first: bool
) -> float:
    """Array cycles one stationary tile occupies within a schedule.

    With the weight FIFO (``weight_double_buffer``), the next tile's weights
    shift in behind the current tile's streaming, so occupancy is
    ``max(stream, weight_load) + setup``, and the systolic fill/drain skew is
    exposed only on the first tile of the schedule (later tiles' fills hide
    under their predecessors' drains).  Without it, every tile pays the full
    serial breakdown from :func:`gemm_tile_cycles`.
    """
    tile = gemm_tile_cycles(rows, k_t, n_t, config)
    if not config.weight_double_buffer:
        return tile.total
    occupancy = max(tile.stream, tile.weight_load) + tile.setup
    if first:
        occupancy += tile.pipeline
    return occupancy


@dataclasses.dataclass(frozen=True)
class WorkItem:
    """One array occupancy with its upstream fill and downstream drain.

    ``fill_cycles`` covers whatever DMA must complete before this tile can
    stream (input block and/or stationary weights); ``drain_cycles`` is DMA
    work enqueued after it (OFMap writeback), overlappable with later items.
    """

    label: str
    gemm_cycles: float
    fill_cycles: float
    drain_cycles: float = 0.0
    macs: int = 0

    def __post_init__(self) -> None:
        if self.gemm_cycles < 0 or self.fill_cycles < 0 or self.drain_cycles < 0:
            raise ValueError("cycle counts must be non-negative")


@dataclasses.dataclass(frozen=True)
class ScheduleResult:
    """Outcome of executing a schedule on the two-resource pipeline."""

    total_cycles: float
    compute_cycles: float
    dma_cycles: float
    exposed_dma_cycles: float
    items: int
    macs: int

    def tflops(self, clock_ghz: float) -> float:
        if self.total_cycles <= 0:
            return 0.0
        return 2 * self.macs * clock_ghz / self.total_cycles / 1e3

    def utilization(self, config: TPUConfig) -> float:
        if self.total_cycles <= 0:
            return 0.0
        return self.macs / (config.peak_macs_per_cycle * self.total_cycles)


def execute_schedule(items: List[WorkItem]) -> ScheduleResult:
    """Run items through the DMA/array pipeline with double buffering.

    Fills occupy the read channel, drains the write channel — HBM moves both
    directions concurrently, so OFMap writeback never delays the next tile's
    fill (this mirrors the vector memories' read/write interleaving in
    Sec. IV-A).  Compute item ``i`` starts once its fill has landed and the
    array is free.
    """
    if trace.enabled():
        trace.counter("schedule.reference_executions", 1, cat="schedule")
        trace.counter("schedule.reference_items", len(items), cat="schedule")
    read_free = 0.0
    write_free = 0.0
    compute_free = 0.0
    compute_busy = 0.0
    dma_busy = 0.0
    macs = 0
    for item in items:
        read_free += item.fill_cycles
        dma_busy += item.fill_cycles
        start = max(compute_free, read_free)
        compute_free = start + item.gemm_cycles
        compute_busy += item.gemm_cycles
        if item.drain_cycles:
            # The drain cannot start before its data exists.
            write_free = max(write_free, compute_free) + item.drain_cycles
            dma_busy += item.drain_cycles
        macs += item.macs
    total = max(compute_free, read_free, write_free)
    exposed = total - compute_busy
    return ScheduleResult(
        total_cycles=total,
        compute_cycles=compute_busy,
        dma_cycles=dma_busy,
        exposed_dma_cycles=max(0.0, exposed),
        items=len(items),
        macs=macs,
    )


#: Minimum number of IFMap blocks a layer is split into so fills, compute
#: and drains pipeline (the array consumes rows as the DMA stages them; a
#: single monolithic block would serialise fill -> GEMM -> drain).
MIN_PIPELINE_BLOCKS = 16

#: Smallest block worth scheduling (finer granularity only adds setup).
MIN_BLOCK_ROWS = 1024


def ifmap_rows_per_block(spec: ConvSpec, config: TPUConfig, group_size: int) -> int:
    """Output rows (of the lowered matrix) per scheduled IFMap block.

    Bounded above by the IFMap share of the vector memories (half the
    unified SRAM for double-buffering; the rest holds OFMap and in-flight
    weights) and below by pipelining: even when the whole layer fits on
    chip, the schedule streams it in at least :data:`MIN_PIPELINE_BLOCKS`
    pieces so DMA and compute overlap.
    """
    budget = config.unified_sram_bytes // 4  # one of two IFMap buffers
    per_row = spec.c_in * group_size * config.compute_elem_bytes
    capacity_rows = max(1, budget // per_row)
    total = spec.lowered_rows()
    pipeline_rows = max(MIN_BLOCK_ROWS, -(-total // MIN_PIPELINE_BLOCKS))
    return max(1, min(capacity_rows, pipeline_rows, total))


def channel_first_schedule(
    spec: ConvSpec,
    config: TPUConfig,
    engine: Optional[FillEngine] = None,
    group_size: Optional[int] = None,
    layout: Layout = Layout.NHWC,
    debug_labels: bool = False,
) -> List[WorkItem]:
    """Work items for the channel-first implicit im2col conv (Sec. IV).

    Structure: for each IFMap row block, for each multi-tile group, for each
    K-chunk x N-chunk of the merged GEMM — one work item.  The group's input
    slab is filled once per (block, group); stationary weights are re-staged
    per (group, K-chunk, N-chunk); the OFMap block drains once per
    (block, N-chunk) after its last accumulating group.

    ``debug_labels=True`` attaches per-item position labels; the timing path
    never reads them, so they stay off by default.  Timing runs use the
    vectorized twin (:mod:`repro.perf.schedule_arrays`); this per-item
    builder is the reference the equivalence tests gate against.
    """
    engine = engine if engine is not None else FillEngine(config)
    if group_size is None:
        group_size = tpu_multi_tile_policy(spec, config.array_rows)
    groups = plan_multi_tile(spec, group_size, row_aligned=True)
    m_total = spec.lowered_rows()
    m_block = ifmap_rows_per_block(spec, config, group_size)
    items: List[WorkItem] = []
    for m0 in range(0, m_total, m_block):
        rows = min(m_block, m_total - m0)
        for gi, group in enumerate(groups):
            merged_k = group.merged_k
            input_fill = engine.ifmap_tile_fill_cycles(
                spec, rows, group.group_size, layout=layout
            )
            first_chunk = True
            for k0 in range(0, merged_k, config.array_rows):
                k_t = min(config.array_rows, merged_k - k0)
                for n0 in range(0, spec.c_out, config.array_cols):
                    n_t = min(config.array_cols, spec.c_out - n0)
                    fill = engine.weight_fill_cycles(k_t, n_t)
                    if first_chunk:
                        fill += input_fill
                        first_chunk = False
                    drain = 0.0
                    last_group = gi == len(groups) - 1 and k0 + k_t >= merged_k
                    if last_group:
                        drain = engine.ofmap_drain_cycles(rows, n_t)
                    occupancy = tile_occupancy_cycles(
                        rows, k_t, n_t, config, first=not items
                    )
                    items.append(
                        WorkItem(
                            label=f"m{m0}:g{gi}:k{k0}:n{n0}" if debug_labels else "",
                            gemm_cycles=occupancy,
                            fill_cycles=fill,
                            drain_cycles=drain,
                            macs=rows * k_t * n_t,
                        )
                    )
    return items


def gemm_schedule(
    shape: GemmShape,
    config: TPUConfig,
    engine: Optional[FillEngine] = None,
    debug_labels: bool = False,
) -> List[WorkItem]:
    """Work items for a plain GEMM primitive on the TPU.

    A-panels stream per (M-block, K-chunk); B tiles are stationary per
    (K-chunk, N-chunk); C drains per (M-block, N-chunk) on the last K-chunk.
    ``debug_labels`` opts into per-item position labels (never read on the
    timing path).
    """
    engine = engine if engine is not None else FillEngine(config)
    elem = config.compute_elem_bytes
    # A-panel budget: one of two IFMap buffers, as in the conv schedule;
    # same pipelining floor on the block count.
    budget = config.unified_sram_bytes // 4
    k_chunks = [
        min(config.array_rows, shape.k - k0) for k0 in range(0, shape.k, config.array_rows)
    ]
    per_row = max(k_chunks) * elem
    capacity_rows = max(1, budget // per_row)
    pipeline_rows = max(MIN_BLOCK_ROWS, -(-shape.m // MIN_PIPELINE_BLOCKS))
    m_block = max(1, min(shape.m, capacity_rows, pipeline_rows))
    items: List[WorkItem] = []
    for m0 in range(0, shape.m, m_block):
        rows = min(m_block, shape.m - m0)
        for ki, k0 in enumerate(range(0, shape.k, config.array_rows)):
            k_t = min(config.array_rows, shape.k - k0)
            a_fill = engine.gemm_a_fill_cycles(rows, k_t)
            first = True
            for n0 in range(0, shape.n, config.array_cols):
                n_t = min(config.array_cols, shape.n - n0)
                fill = engine.weight_fill_cycles(k_t, n_t)
                if first:
                    fill += a_fill
                    first = False
                drain = 0.0
                if k0 + k_t >= shape.k:
                    drain = engine.ofmap_drain_cycles(rows, n_t)
                occupancy = tile_occupancy_cycles(rows, k_t, n_t, config, first=not items)
                items.append(
                    WorkItem(
                        label=f"m{m0}:k{k0}:n{n0}" if debug_labels else "",
                        gemm_cycles=occupancy,
                        fill_cycles=fill,
                        drain_cycles=drain,
                        macs=rows * k_t * n_t,
                    )
                )
    return items
