"""Explicit im2col on the TPU — the SCALE-Sim assumption, priced honestly.

The related work the paper positions against (SCALE-Sim and the sparse-
accelerator literature) "assumes an explicit im2col execution method": the
lowered matrix exists in DRAM and the systolic array runs a plain GEMM over
it.  The TPU has no GPU to run the transform, so on-platform the lowering
itself must run on the vector units (a pure data-movement pass through the
vector memories) and the lowered matrix must make a DRAM round trip.

This module prices that whole path on our substrate:

1. **Transform**: read the IFMap once, write the lowered matrix once —
   bandwidth-bound on HBM, rate-limited additionally by the vector units'
   element throughput (one element moved per ALU per cycle).
2. **GEMM**: the standard :func:`~repro.systolic.scheduler.gemm_schedule`
   over the `[M, H_F*W_F*C_I] x [.., C_O]` problem, which now must *stream
   the lowered matrix from DRAM* — `H_F*W_F`x the implicit path's input
   traffic.

Workspace: the lowered matrix's DRAM footprint (the Table I quantity) —
returned so experiments can report both costs of the naive method at once.
"""

from __future__ import annotations

import dataclasses

from ..core.conv_spec import ConvSpec
from ..perf.cache import SIM_CACHE, config_key, spec_key
from ..perf import schedule_arrays as perf_schedules
from .config import TPUConfig, TPU_V2
from .dma import FillEngine
from .simulator import LayerResult

__all__ = ["ExplicitTPUResult", "simulate_conv_explicit_tpu"]


@dataclasses.dataclass(frozen=True)
class ExplicitTPUResult:
    """Timing + workspace of the explicit path on the TPU."""

    transform_cycles: float
    gemm: LayerResult
    workspace_bytes: int

    @property
    def cycles(self) -> float:
        return self.transform_cycles + self.gemm.cycles

    def tflops(self, clock_ghz: float, macs: int) -> float:
        if self.cycles <= 0:
            return 0.0
        return 2 * macs * clock_ghz / self.cycles / 1e3


def _transform_cycles(spec: ConvSpec, config: TPUConfig) -> float:
    """The on-TPU lowering pass: IFMap in, lowered matrix out.

    Bounded by the slower of (a) HBM moving ``ifmap + lowered`` bytes and
    (b) the vector units touching every lowered element once.
    """
    elem = config.compute_elem_bytes
    hbm_bytes = spec.ifmap_bytes(elem) + spec.lowered_bytes(elem)
    engine = FillEngine(config)
    hbm_cycles = engine.hbm.contiguous_cycles(hbm_bytes)
    alu_cycles = spec.lowered_elements() / config.vector_alus
    return max(hbm_cycles, alu_cycles)


def simulate_conv_explicit_tpu(
    spec: ConvSpec, config: TPUConfig = TPU_V2
) -> ExplicitTPUResult:
    """Price the explicit im2col conv on the TPU (transform + GEMM)."""
    name = f"explicit-gemm:{spec.describe()}"

    def compute() -> ExplicitTPUResult:
        transform = _transform_cycles(spec, config)
        outcome = perf_schedules.execute_schedule_arrays(
            perf_schedules.gemm_schedule_arrays(spec.gemm_shape(), config, FillEngine(config))
        )
        gemm = LayerResult(
            name=name,
            cycles=outcome.total_cycles,
            tflops=2 * spec.macs * config.clock_ghz / outcome.total_cycles / 1e3,
            utilization=spec.macs / (config.peak_macs_per_cycle * outcome.total_cycles),
            compute_cycles=outcome.compute_cycles,
            dma_cycles=outcome.dma_cycles,
            exposed_dma_cycles=outcome.exposed_dma_cycles,
            macs=spec.macs,
        )
        return ExplicitTPUResult(
            transform_cycles=transform,
            gemm=gemm,
            workspace_bytes=spec.lowered_bytes(config.compute_elem_bytes),
        )

    key = ("tpu-explicit", config_key(config), spec_key(spec))
    # The explicit path never sees the conv's spatial structure — only the
    # lowered GEMM (rows x cols x C_O) and the transform's byte/element
    # volumes, all functions of the tuple below.  In particular the N x H*W
    # commutation (batch folding) is exact *here*, unlike on the implicit
    # path where HWCN packing makes the batch dimension physical (Sec. IV-C).
    canonical = (
        "tpu-explicit@c",
        config_key(config),
        spec.lowered_rows(),
        spec.lowered_cols(),
        spec.c_out,
        spec.ifmap_elements(),
    )
    result = SIM_CACHE.get_or_compute(key, compute, canonical_key=canonical)
    if result.gemm.name != name:
        result = dataclasses.replace(
            result, gemm=dataclasses.replace(result.gemm, name=name)
        )
    return result
