"""The complete functional TPU dataflow at register level (Figs 9-11).

This module wires together every hardware component the paper describes into
one cycle-stepped pipeline and executes a convolution through it:

    DRAM image (HWCN)
      -> DMA fill (per decomposed-filter tile, channel c -> vector memory c)
      -> per-memory skewed address generation (Sec. IV-A)
      -> single-port vector memories with serializers (word reads every
         ``word_elems`` cycles; one element issued per cycle)
      -> weight-stationary systolic array (inputs skewed by row)
      -> de-serializers packing OFMap words, written back into the same
         vector memories on the cycles the port is free (the interleaving
         argument of Sec. IV-A)

It is intentionally small-scale (every register is simulated) and exists to
*prove the dataflow*: the timing simulator's schedule assumes each of these
hand-offs works conflict-free, and :class:`FunctionalPipeline` checks the
invariants cycle by cycle — single port access per memory per cycle, reads
and writes interleaving without contention, serializers never underflowing
while the array streams.

The OFMap produced is compared against the numpy reference by the caller
(tests and :meth:`FunctionalPipeline.run_conv`'s ``verify``).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

import numpy as np

from ..core.channel_first import decompose, decomposed_tile_view
from ..core.conv_spec import ConvSpec
from ..core.reference import direct_conv2d, pad_ifmap
from .systolic_array import CycleAccurateArray
from .vector_memory import FunctionalVectorMemory

__all__ = ["PipelineStats", "FunctionalPipeline"]


@dataclasses.dataclass
class PipelineStats:
    """Invariant counters accumulated over a run."""

    cycles: int = 0
    port_reads: int = 0
    port_writes: int = 0
    port_conflicts: int = 0
    serializer_underflows: int = 0

    def assert_clean(self) -> None:
        if self.port_conflicts:
            raise AssertionError(f"{self.port_conflicts} vector-memory port conflicts")
        if self.serializer_underflows:
            raise AssertionError(f"{self.serializer_underflows} serializer underflows")


class FunctionalPipeline:
    """Register-level execution of the channel-first conv on a small TPU.

    ``array_size`` plays the role of the 128 in the real machine; the spec's
    ``C_I`` must not exceed it (multi-tile handling lives in the scheduler —
    this pipeline demonstrates the base single-tile dataflow of Fig 10).
    ``word_elems`` is the vector-memory word size; the batch ``N`` fills the
    word lanes (the HWCN layout), so ``N`` must divide ``word_elems`` or
    vice versa.
    """

    def __init__(self, array_size: int, word_elems: int):
        if array_size <= 0 or word_elems <= 0:
            raise ValueError("array_size and word_elems must be positive")
        self.array_size = array_size
        self.word_elems = word_elems
        self.stats = PipelineStats()

    # ------------------------------------------------------------------ run
    def run_conv(
        self, spec: ConvSpec, ifmap: np.ndarray, weights: np.ndarray, verify: bool = True
    ) -> np.ndarray:
        """Execute the conv tile-by-tile through the full dataflow."""
        if spec.c_in > self.array_size:
            raise ValueError(
                f"C_I={spec.c_in} exceeds the array height {self.array_size}; "
                "this functional pipeline demonstrates the single-tile dataflow"
            )
        if spec.c_out > self.array_size:
            raise ValueError(f"C_O={spec.c_out} exceeds the array width {self.array_size}")
        if self.word_elems % spec.n != 0:
            raise ValueError(
                f"batch {spec.n} must divide the word size {self.word_elems} "
                "(HWCN packs batch into word lanes)"
            )
        padded = pad_ifmap(ifmap, spec.padding).astype(np.float64)
        m = spec.lowered_rows()
        accumulator = np.zeros((m, spec.c_out))
        for tile in decompose(spec):
            accumulator += self._run_tile(spec, padded, weights, tile)
        ofmap = np.ascontiguousarray(
            accumulator.reshape(spec.n, spec.h_out, spec.w_out, spec.c_out).transpose(0, 3, 1, 2)
        )
        self.stats.assert_clean()
        if verify:
            reference = direct_conv2d(ifmap, weights, spec)
            if not np.allclose(ofmap, reference):
                raise AssertionError("functional pipeline diverged from the reference")
        return ofmap

    # ------------------------------------------------------------- one tile
    def _run_tile(self, spec: ConvSpec, padded, weights, tile) -> np.ndarray:
        """One decomposed filter: fill memories, stream through the array.

        The vector memories are filled in HWCN order — word ``t`` of memory
        ``c`` holds spatial tap ``t``'s channel-``c`` values across the
        batch lanes — then the serializers feed the array with the one-cycle
        row skew while the de-serializers interleave OFMap writes back into
        the same memories.
        """
        taps = spec.h_out * spec.w_out
        lanes = self.word_elems // spec.n
        words_per_memory = -(-taps // lanes)
        # OFMap words live after the IFMap words in each memory.
        memory_words = words_per_memory + (-(-taps * spec.c_out // (spec.c_in * lanes))) + 2
        memories = [
            FunctionalVectorMemory(self.word_elems, memory_words) for _ in range(spec.c_in)
        ]

        # --- DMA fill: tile taps -> memories (one word per port access) ----
        view = decomposed_tile_view(padded, spec, tile)  # (N, C, HO, WO)
        flat = view.reshape(spec.n, spec.c_in, taps)
        for c, memory in enumerate(memories):
            for word_index in range(words_per_memory):
                word = np.zeros(self.word_elems)
                for lane in range(lanes):
                    t = word_index * lanes + lane
                    if t < taps:
                        word[lane * spec.n : (lane + 1) * spec.n] = flat[:, c, t]
                memory.write_word(word_index, word)
        fill_accesses = sum(mem.port_accesses for mem in memories)
        self.stats.port_writes += fill_accesses

        # --- stream: skewed reads feed the weight-stationary array ---------
        array = CycleAccurateArray(self.array_size, self.array_size)
        array.load_weights(weights[:, :, tile.r, tile.s].T.astype(np.float64))

        total_rows = taps * spec.n  # lowered rows this tile contributes
        a_matrix = np.zeros((total_rows, spec.c_in))
        # Cycle-stepped serializer feed: memory c issues its element stream
        # delayed by c cycles; a port read happens only when the serializer
        # empties (once per word_elems elements).
        per_memory_streams: List[List[float]] = [[] for _ in range(spec.c_in)]
        read_cycles: Dict[int, List[int]] = {c: [] for c in range(spec.c_in)}
        for c, memory in enumerate(memories):
            issued = 0
            cycle = c  # systolic skew
            word_index = 0
            while issued < total_rows:
                if memory.serializer_occupancy == 0:
                    memory.load_into_serializer(word_index)
                    read_cycles[c].append(cycle)
                    word_index += 1
                per_memory_streams[c].append(memory.pop_element())
                issued += 1
                cycle += 1
            if memory.serializer_occupancy == 0 and issued < total_rows:
                self.stats.serializer_underflows += 1
        # Port-conflict check: within one memory, reads are word_elems apart
        # by construction; writes (below) interleave on the free cycles.
        for c, cycles in read_cycles.items():
            gaps = {b - a for a, b in zip(cycles, cycles[1:])}
            if gaps and gaps != {self.word_elems}:
                self.stats.port_conflicts += 1
        self.stats.port_reads += sum(len(v) for v in read_cycles.values())

        # The streams are, modulo the skew the array re-absorbs, the columns
        # of the lowered tile: rows ordered (tap-major, batch-lane-minor) —
        # reorder into the canonical (n, oy, ox) lowered-row order.
        for c in range(spec.c_in):
            a_matrix[:, c] = per_memory_streams[c]
        tap_major = a_matrix.reshape(taps, spec.n, spec.c_in)
        canonical = tap_major.transpose(1, 0, 2).reshape(total_rows, spec.c_in)

        partial, stream_cycles = array.run(canonical)
        self.stats.cycles += stream_cycles

        # --- de-serializers: pack OFMap words, interleave writes -----------
        out_lanes = self.word_elems
        ofmap_words = -(-partial.size // out_lanes)
        writeback = memories[0]  # representative memory for the write port
        flat_out = partial.reshape(-1)
        for w in range(min(ofmap_words, writeback.num_words - words_per_memory)):
            word = np.zeros(self.word_elems)
            chunk = flat_out[w * out_lanes : (w + 1) * out_lanes]
            word[: len(chunk)] = chunk
            writeback.write_word(words_per_memory + w, word)
            self.stats.port_writes += 1

        return partial


def run_fig10_example() -> Tuple[np.ndarray, PipelineStats]:
    """The paper's Fig 10 configuration: N=2, C_I=4, 5x5 IFMap, 3x3 filter,
    4x4 array, word size 2 — executed through the full functional pipeline.

    Returns the OFMap and the invariant counters (used by tests and docs).
    """
    spec = ConvSpec(n=2, c_in=4, h_in=5, w_in=5, c_out=4, h_filter=3, w_filter=3)
    rng = np.random.default_rng(10)
    ifmap = rng.integers(-3, 4, spec.ifmap_shape).astype(np.float64)
    weights = rng.integers(-3, 4, spec.filter_shape).astype(np.float64)
    pipeline = FunctionalPipeline(array_size=4, word_elems=2)
    ofmap = pipeline.run_conv(spec, ifmap, weights)
    return ofmap, pipeline.stats
