"""Multi-core TPU scaling (the TPU-v2 chip has two cores; boards have more).

The standard deployment splits the batch across cores (data parallelism for
inference; the paper's Fig 9 caption notes the dual-core organisation).
This module models that: a batch-``N`` layer on ``C`` cores runs as a
batch-``ceil(N/C)`` layer per core, plus a per-step synchronisation cost.
Scaling efficiency degrades exactly where the paper's machinery predicts —
small per-core batches stop filling the vector-memory words (HWCN packing
wants ``word_elems`` images) and pipeline overheads amortise worse.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Sequence

from ..core.conv_spec import ConvSpec
from .config import TPUConfig, TPU_V2
from .simulator import LayerResult, TPUSim

__all__ = ["MultiCoreResult", "simulate_conv_multicore", "scaling_efficiency"]


@dataclasses.dataclass(frozen=True)
class MultiCoreResult:
    """Outcome of a data-parallel multi-core run."""

    cores: int
    per_core: LayerResult
    sync_cycles: float

    @property
    def cycles(self) -> float:
        """Wall-clock cycles: the slowest core plus synchronisation."""
        return self.per_core.cycles + self.sync_cycles

    @property
    def total_macs(self) -> int:
        return self.per_core.macs * self.cores

    def tflops(self, clock_ghz: float) -> float:
        if self.cycles <= 0:
            return 0.0
        return 2 * self.total_macs * clock_ghz / self.cycles / 1e3


def simulate_conv_multicore(
    spec: ConvSpec,
    cores: int = 2,
    config: TPUConfig = TPU_V2,
    sync_cycles_per_step: float = 2000.0,
) -> MultiCoreResult:
    """Run a layer data-parallel across ``cores`` cores.

    The batch is split evenly (rounded up — a ragged split runs at the
    larger shard's latency); inference needs no gradient exchange, so the
    synchronisation term is a fixed barrier per layer.
    """
    if cores <= 0:
        raise ValueError(f"cores must be positive, got {cores}")
    if spec.n < cores:
        raise ValueError(f"batch {spec.n} cannot split across {cores} cores")
    shard = spec.with_batch(math.ceil(spec.n / cores))
    per_core = TPUSim(config).simulate_conv(shard)
    return MultiCoreResult(cores=cores, per_core=per_core, sync_cycles=sync_cycles_per_step)


def scaling_efficiency(
    spec: ConvSpec, core_counts: Sequence[int] = (1, 2, 4, 8), config: TPUConfig = TPU_V2
):
    """Speedup / cores for each count — the scaling-curve series.

    Returns ``{cores: (speedup, efficiency)}`` relative to one core.
    MACs per shard shrink with the split, so superlinear numbers are
    impossible by construction; sub-linear numbers come from pipeline
    amortisation and the fixed sync barrier.
    """
    results = {}
    base = simulate_conv_multicore(spec, 1, config).cycles
    for cores in core_counts:
        if spec.n < cores:
            continue
        cycles = simulate_conv_multicore(spec, cores, config).cycles
        speedup = base / cycles
        results[cores] = (speedup, speedup / cores)
    return results
