"""TPUSim configuration (Tbl. II of the paper).

One :class:`TPUConfig` instance describes a single TPU-v2-like core: the
systolic array geometry, the 128 independent vector memories with their word
size, and the HBM interface.  The design-space-exploration experiments
(Fig 16) work by sweeping fields of this dataclass, so everything the
simulator consumes is parameterised here and nothing is hard-coded
downstream.
"""

from __future__ import annotations

import dataclasses

from ..errors import ConfigError
from ..memory.dram import HBMConfig
from ..memory.sram import SRAMConfig

__all__ = ["TPUConfig", "TPU_V2"]


@dataclasses.dataclass(frozen=True)
class TPUConfig:
    """Parameters of one simulated TPU core.

    Defaults reproduce Tbl. II: a 128x128 weight-stationary systolic array at
    700 MHz, a 32 MB unified on-chip memory organised as 128 single-port SRAM
    arrays ("vector memories") with an 8-element x 4-byte word, and 700 GB/s
    of HBM.
    """

    array_rows: int = 128  # PE rows == K dimension fed from vector memories
    array_cols: int = 128  # PE columns == N dimension (output channels)
    clock_ghz: float = 0.7
    num_vector_memories: int = 128
    sram_word_elems: int = 8  # elements per vector-memory word
    sram_elem_bytes: int = 4  # Tbl. II: 8 x 4 bytes per word
    unified_sram_bytes: int = 32 * 1024 * 1024
    vector_alus: int = 256
    hbm: HBMConfig = dataclasses.field(default_factory=HBMConfig)
    sram: SRAMConfig = dataclasses.field(default_factory=SRAMConfig)
    # Compute datatype fed to the array (bf16/fp16 on TPU-v2).
    compute_elem_bytes: int = 2
    # Cycles to shift one weight tile into the stationary array per row; the
    # array loads weights column-by-column so a full K_t x N_t tile costs
    # K_t * weight_load_cycles_per_row cycles.
    weight_load_cycles_per_row: float = 1.0
    # Fixed per-tile instruction/setup overhead, cycles.
    tile_setup_cycles: float = 8.0
    # TPU-style weight FIFO: the next stationary tile shifts in behind the
    # current one, so weight load overlaps streaming (per-tile occupancy is
    # max(stream, weight_load)) and consecutive tiles pipeline back-to-back
    # (fill/drain skew paid once per schedule, not per tile).  Disabling this
    # reverts to fully-serialised tiles.
    weight_double_buffer: bool = True

    def __post_init__(self) -> None:
        if self.array_rows <= 0:
            raise ConfigError(
                "array dimensions must be positive",
                field="array_rows", value=self.array_rows,
            )
        if self.array_cols <= 0:
            raise ConfigError(
                "array dimensions must be positive",
                field="array_cols", value=self.array_cols,
            )
        if self.clock_ghz <= 0:
            raise ConfigError(
                "clock must be positive", field="clock_ghz", value=self.clock_ghz
            )
        if self.num_vector_memories != self.array_rows:
            raise ConfigError(
                "the TPU organisation ties one vector memory to one PE row "
                f"({self.array_rows} rows)",
                field="num_vector_memories", value=self.num_vector_memories,
            )
        if self.sram_word_elems <= 0:
            raise ConfigError(
                "SRAM word geometry must be positive",
                field="sram_word_elems", value=self.sram_word_elems,
            )
        if self.sram_elem_bytes <= 0:
            raise ConfigError(
                "SRAM word geometry must be positive",
                field="sram_elem_bytes", value=self.sram_elem_bytes,
            )
        if self.unified_sram_bytes <= 0:
            raise ConfigError(
                "SRAM capacity must be positive",
                field="unified_sram_bytes", value=self.unified_sram_bytes,
            )
        if self.compute_elem_bytes <= 0:
            raise ConfigError(
                "element size must be positive",
                field="compute_elem_bytes", value=self.compute_elem_bytes,
            )

    # ------------------------------------------------------------- derived
    @property
    def peak_macs_per_cycle(self) -> int:
        return self.array_rows * self.array_cols

    @property
    def peak_tflops(self) -> float:
        """Peak TFLOPS (2 FLOPs per MAC)."""
        return 2 * self.peak_macs_per_cycle * self.clock_ghz * 1e9 / 1e12

    @property
    def sram_word_bytes(self) -> int:
        return self.sram_word_elems * self.sram_elem_bytes

    @property
    def per_memory_bytes(self) -> int:
        """Capacity of one vector memory."""
        return self.unified_sram_bytes // self.num_vector_memories

    def with_array(self, size: int) -> "TPUConfig":
        """A copy with a square array of ``size`` (vector memories track rows)."""
        return dataclasses.replace(
            self, array_rows=size, array_cols=size, num_vector_memories=size
        )

    def with_word_elems(self, word_elems: int) -> "TPUConfig":
        return dataclasses.replace(self, sram_word_elems=word_elems)

    def describe(self) -> str:
        return (
            f"TPU[{self.array_rows}x{self.array_cols} @ {self.clock_ghz} GHz, "
            f"{self.unified_sram_bytes // (1024 * 1024)} MB SRAM in "
            f"{self.num_vector_memories} arrays (word {self.sram_word_elems}x"
            f"{self.sram_elem_bytes} B), {self.hbm.peak_bandwidth_gbps:.0f} GB/s HBM]"
        )


#: The canonical Tbl. II configuration used throughout the evaluation.
TPU_V2 = TPUConfig()
