"""Position-sparse channel-first scheduling on the TPU.

The hardware payoff of :mod:`repro.core.sparsity`: a pruned filter position
is simply absent from the schedule — its vector-memory fill, weight load
and array passes never happen.  No sparse indices, no load balancing, no
crossbars; the win is purely a shorter schedule, which is exactly the kind
of sparsity a systolic array can exploit (contrast the fine-grained-sparse
accelerator literature the paper cites, which needs dedicated hardware).

Speedup is therefore ~``1/density`` when compute-bound, degrading towards
1x only as the layer becomes memory-bound on weights/OFMap movement — the
sparsity experiment sweeps this.
"""

from __future__ import annotations

import dataclasses
from typing import List

from ..core.conv_spec import ConvSpec
from ..core.sparsity import PositionMask
from ..core.tiling import MultiTileGroup, tpu_multi_tile_policy
from ..perf.cache import SIM_CACHE, config_key, spec_key
from ..perf import schedule_arrays as perf_schedules
from .config import TPUConfig, TPU_V2
from .dma import FillEngine
from .scheduler import WorkItem, execute_schedule, ifmap_rows_per_block, tile_occupancy_cycles
from .simulator import LayerResult

__all__ = ["sparse_channel_first_schedule", "simulate_conv_sparse"]


def _masked_groups(spec: ConvSpec, mask: PositionMask, group_size: int) -> List[MultiTileGroup]:
    """Row-aligned groups over the *kept* positions only."""
    kept = mask.kept_tiles()
    groups: List[MultiTileGroup] = []
    for r in range(spec.h_filter):
        row_tiles = [t for t in kept if t.r == r]
        for start in range(0, len(row_tiles), group_size):
            chunk = tuple(row_tiles[start : start + group_size])
            if chunk:
                groups.append(MultiTileGroup(tiles=chunk, spec=spec))
    return groups


def sparse_channel_first_schedule(
    spec: ConvSpec,
    mask: PositionMask,
    config: TPUConfig = TPU_V2,
    engine: FillEngine = None,
    group_size: int = None,
    debug_labels: bool = False,
) -> List[WorkItem]:
    """The channel-first schedule restricted to the mask's positions.

    This is the per-item reference path (timing runs go through the
    vectorized arrays in :func:`simulate_conv_sparse`); ``debug_labels``
    opts into the per-item label strings."""
    if mask.spec != spec:
        raise ValueError("mask was built for a different spec")
    engine = engine if engine is not None else FillEngine(config)
    if group_size is None:
        group_size = tpu_multi_tile_policy(spec, config.array_rows)
    groups = _masked_groups(spec, mask, group_size)
    m_total = spec.lowered_rows()
    m_block = ifmap_rows_per_block(spec, config, group_size)
    items: List[WorkItem] = []
    for m0 in range(0, m_total, m_block):
        rows = min(m_block, m_total - m0)
        for gi, group in enumerate(groups):
            merged_k = group.merged_k
            input_fill = engine.ifmap_tile_fill_cycles(spec, rows, group.group_size)
            first_chunk = True
            for k0 in range(0, merged_k, config.array_rows):
                k_t = min(config.array_rows, merged_k - k0)
                for n0 in range(0, spec.c_out, config.array_cols):
                    n_t = min(config.array_cols, spec.c_out - n0)
                    fill = engine.weight_fill_cycles(k_t, n_t)
                    if first_chunk:
                        fill += input_fill
                        first_chunk = False
                    drain = 0.0
                    if gi == len(groups) - 1 and k0 + k_t >= merged_k:
                        drain = engine.ofmap_drain_cycles(rows, n_t)
                    items.append(
                        WorkItem(
                            label=f"sparse:m{m0}:g{gi}:k{k0}:n{n0}" if debug_labels else "",
                            gemm_cycles=tile_occupancy_cycles(
                                rows, k_t, n_t, config, first=not items
                            ),
                            fill_cycles=fill,
                            drain_cycles=drain,
                            macs=rows * k_t * n_t,
                        )
                    )
    return items


def simulate_conv_sparse(
    spec: ConvSpec, mask: PositionMask, config: TPUConfig = TPU_V2
) -> LayerResult:
    """Timing of the position-sparse conv; MACs counted for the kept work."""
    name = f"sparse[{mask.density:.2f}]:{spec.describe()}"

    def compute() -> LayerResult:
        engine = FillEngine(config)
        group_size = tpu_multi_tile_policy(spec, config.array_rows)
        schedule = perf_schedules.conv_schedule_arrays_from_groups(
            spec, config, engine, _masked_groups(spec, mask, group_size), group_size
        )
        outcome = perf_schedules.execute_schedule_arrays(schedule)
        kept_macs = int(spec.macs * mask.density)
        cycles = outcome.total_cycles
        return LayerResult(
            name=name,
            cycles=cycles,
            tflops=2 * kept_macs * config.clock_ghz / cycles / 1e3,
            utilization=kept_macs / (config.peak_macs_per_cycle * cycles),
            compute_cycles=outcome.compute_cycles,
            dma_cycles=outcome.dma_cycles,
            exposed_dma_cycles=outcome.exposed_dma_cycles,
            macs=kept_macs,
        )

    key = ("tpu-sparse", config_key(config), spec_key(spec), mask.kept)
    result = SIM_CACHE.get_or_compute(key, compute)
    if result.name != name:
        result = dataclasses.replace(result, name=name)
    return result
