"""The channel-last (Lym-et-al.-style) schedule migrated onto the TPU.

Sec. II-C argues the previously published implicit im2col does not port to a
systolic array: it needs a heavily-banked SRAM with a crossbar, and its
sliding-window staging does not shrink with stride.  This module builds that
schedule on our systolic substrate anyway — the "what if the TPU used
channel-last" counterfactual — so the ablation experiment can show *on the
same simulator* why the TPU's observed stride-insensitivity implies the
channel-first design:

- IFMap blocks are staged as **sliding-window regions** (priced by
  :meth:`~repro.systolic.dma.FillEngine.sliding_window_fill_cycles`, whose
  size is input-geometry-bound and does not shrink with stride);
- the GEMM over a staged region covers the full ``H_F*W_F*C_I`` K dimension
  for the outputs the region supports (shrinking ~quadratically with
  stride);
- feeding the array from the staged region requires per-element crossbar
  routing, modelled as an address-generation throughput tax that grows with
  stride (bank conflicts against the offline stride-1 layout, exactly the
  paper's Fig 3 argument).
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..core.conv_spec import ConvSpec
from .config import TPUConfig
from .dma import FillEngine
from .scheduler import WorkItem, execute_schedule, tile_occupancy_cycles
from .simulator import LayerResult

__all__ = ["channel_last_tpu_schedule", "simulate_conv_channel_last"]

#: Crossbar address-generation slowdown per stride step beyond 1 (the
#: offline bank-conflict-free layout only exists for stride 1).
CROSSBAR_STRIDE_TAX = 0.5


def channel_last_tpu_schedule(
    spec: ConvSpec,
    config: TPUConfig,
    engine: Optional[FillEngine] = None,
) -> List[WorkItem]:
    """Work items for the sliding-window (channel-last) schedule."""
    engine = engine if engine is not None else FillEngine(config)
    # Stage whole output-row bands: each band's window region must fit the
    # IFMap buffer share.
    budget = config.unified_sram_bytes // 4
    bytes_per_in_row = (spec.w_in + 2 * spec.padding) * spec.c_in * config.compute_elem_bytes
    max_in_rows = max(1, budget // bytes_per_in_row)
    out_rows_per_band = max(1, (max_in_rows - spec.h_filter) // spec.stride + 1)
    out_rows_per_band = min(out_rows_per_band, spec.h_out)
    crossbar_tax = 1.0 + CROSSBAR_STRIDE_TAX * (spec.stride - 1)

    k_total = spec.positions * spec.c_in
    items: List[WorkItem] = []
    for n in range(spec.n):
        for band_start in range(0, spec.h_out, out_rows_per_band):
            band_rows = min(out_rows_per_band, spec.h_out - band_start)
            m_band = band_rows * spec.w_out
            fill = engine.sliding_window_fill_cycles(spec, m_band)
            first_of_band = True
            for k0 in range(0, k_total, config.array_rows):
                k_t = min(config.array_rows, k_total - k0)
                for n0 in range(0, spec.c_out, config.array_cols):
                    n_t = min(config.array_cols, spec.c_out - n0)
                    item_fill = engine.weight_fill_cycles(k_t, n_t)
                    if first_of_band:
                        item_fill += fill
                        first_of_band = False
                    occupancy = tile_occupancy_cycles(
                        m_band, k_t, n_t, config, first=not items
                    )
                    occupancy *= crossbar_tax
                    drain = 0.0
                    if k0 + k_t >= k_total:
                        drain = engine.ofmap_drain_cycles(m_band, n_t)
                    items.append(
                        WorkItem(
                            label=f"n{n}:band{band_start}:k{k0}:n{n0}",
                            gemm_cycles=occupancy,
                            fill_cycles=item_fill,
                            drain_cycles=drain,
                            macs=m_band * k_t * n_t,
                        )
                    )
    return items


def simulate_conv_channel_last(spec: ConvSpec, config: TPUConfig) -> LayerResult:
    """Timing of one conv under the counterfactual channel-last schedule."""
    outcome = execute_schedule(channel_last_tpu_schedule(spec, config))
    cycles = outcome.total_cycles
    tflops = 2 * spec.macs * config.clock_ghz / cycles / 1e3 if cycles > 0 else 0.0
    utilization = (
        spec.macs / (config.peak_macs_per_cycle * cycles) if cycles > 0 else 0.0
    )
    return LayerResult(
        name=f"channel-last:{spec.describe()}",
        cycles=cycles,
        tflops=tflops,
        utilization=utilization,
        compute_cycles=outcome.compute_cycles,
        dma_cycles=outcome.dma_cycles,
        exposed_dma_cycles=outcome.exposed_dma_cycles,
        macs=spec.macs,
        group_size=1,
    )
