"""The TPU's vector unit: non-GEMM layers and the skew-layout argument.

Sec. IV-A rejects the "skew the data layout" alternative to skewed address
generation because "it would lead to frequent skewing and restoring for
other non-GEMM layers such as pooling and batch normalization" — the vector
ALUs that run those layers want a plain layout.  This module models exactly
that trade-off:

- :func:`pooling_cycles` / :func:`batchnorm_cycles` — vector-unit timing for
  the two non-GEMM layers the paper names (Tbl. II: 256 vector ALUs);
- :func:`skew_restore_cycles` — the cost of physically skewing/unskewing a
  feature map across the 128 vector memories (each element moves once
  through the vector unit, plus it occupies the memories' ports);
- :func:`skewed_layout_overhead` — the per-network overhead the rejected
  design would pay: one restore before and one skew after every non-GEMM
  layer sandwiched between convolutions.

The ablation experiment uses these to put a number on the paper's
qualitative dismissal.
"""

from __future__ import annotations

from typing import Sequence

from ..core.conv_spec import ConvSpec
from .config import TPUConfig, TPU_V2

__all__ = [
    "pooling_cycles",
    "batchnorm_cycles",
    "skew_restore_cycles",
    "skewed_layout_overhead",
]


def _vector_op_cycles(elements: int, ops_per_element: float, config: TPUConfig) -> float:
    """Elements * ops through the vector ALUs (one op/ALU/cycle)."""
    if elements <= 0:
        raise ValueError("elements must be positive")
    return elements * ops_per_element / config.vector_alus


def pooling_cycles(
    spec: ConvSpec, window: int = 2, stride: int = 2, config: TPUConfig = TPU_V2
) -> float:
    """Max-pool over the layer's OFMap: window^2 compares per output."""
    if window <= 0 or stride <= 0:
        raise ValueError("window and stride must be positive")
    out_h = max(1, (spec.h_out - window) // stride + 1)
    out_w = max(1, (spec.w_out - window) // stride + 1)
    outputs = spec.n * spec.c_out * out_h * out_w
    return _vector_op_cycles(outputs, window * window, config)


def batchnorm_cycles(spec: ConvSpec, config: TPUConfig = TPU_V2) -> float:
    """Inference-mode BN over the OFMap: one multiply-add per element."""
    return _vector_op_cycles(spec.ofmap_elements(), 2.0, config)


def skew_restore_cycles(spec: ConvSpec, config: TPUConfig = TPU_V2) -> float:
    """Physically (de)skewing a feature map across the vector memories.

    Every element is read from its memory, routed one row over, and written
    back — two port accesses per element at word granularity through the
    vector unit: ``2 * elements / word_elems`` port word-ops, rate-limited
    by the 128 single ports, plus the element movement through the ALUs.
    """
    elements = spec.ofmap_elements()
    port_word_ops = 2.0 * elements / config.sram_word_elems
    port_cycles = port_word_ops / config.num_vector_memories
    alu_cycles = _vector_op_cycles(elements, 1.0, config)
    return port_cycles + alu_cycles


def skewed_layout_overhead(
    layers: Sequence[ConvSpec],
    non_gemm_after_every_conv: bool = True,
    config: TPUConfig = TPU_V2,
) -> float:
    """Cycles the rejected skewed-data-layout design adds over a network.

    With a physically skewed layout, every non-GEMM layer needs a restore
    before it and a re-skew after it (Sec. IV-A).  Assuming a pooling/BN
    stage after each conv (``non_gemm_after_every_conv``), the overhead is
    two skew passes per conv layer's OFMap.
    """
    if not layers:
        raise ValueError("layers must be non-empty")
    passes = 2 if non_gemm_after_every_conv else 1
    return sum(passes * skew_restore_cycles(layer, config) for layer in layers)
