"""Network-level scheduling: inter-layer activation residency.

The per-layer simulator charges every layer a fresh IFMap fill from HBM.
Real TPU inference does better: with 32 MB of unified SRAM, a layer whose
input *is the previous layer's output* can often consume it directly from
the vector memories — the OFMap was de-serialised into them anyway
(Sec. IV-A) — skipping both the previous layer's DRAM writeback and this
layer's fill.

:func:`simulate_network_resident` walks a layer chain and, whenever the
producer's OFMap fits the activation budget *and* the consumer reads it as
its IFMap (same geometry), removes the corresponding DMA from both sides:

- producer: OFMap drain cycles are dropped;
- consumer: IFMap fill cycles are dropped (weight fills remain).

The effect is largest on networks of small activations (deep stacks at
14x14/7x7) and vanishing for early high-resolution layers whose activations
exceed the budget — exactly the residency pattern production compilers
exhibit.  The ``residency`` ablation quantifies it per network.

Limitations (documented, deliberate): branching topologies (inception,
dense blocks) are treated as chains — a layer is resident-consumable only
by the next layer in the list — so the numbers are a *lower bound* on what
a graph-aware allocator could do.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

from ..core.conv_spec import ConvSpec
from ..core.tiling import tpu_multi_tile_policy
from ..perf.cache import SIM_CACHE, canonical_spec, config_key, spec_key
from ..perf import schedule_arrays as perf_schedules
from .config import TPUConfig, TPU_V2
from .dma import FillEngine
from .simulator import LayerResult, NetworkResult, TPUSim

__all__ = [
    "ResidencyDecision",
    "plan_residency",
    "residency_traffic_saved_bytes",
    "simulate_network_resident",
]


@dataclasses.dataclass(frozen=True)
class ResidencyDecision:
    """Whether one producer->consumer edge stays on chip."""

    producer_index: int
    resident: bool
    activation_bytes: int
    reason: str


def _chainable(producer: ConvSpec, consumer: ConvSpec) -> bool:
    """The consumer reads exactly the producer's output tensor."""
    return (
        producer.n == consumer.n
        and producer.c_out == consumer.c_in
        and producer.h_out == consumer.h_in
        and producer.w_out == consumer.w_in
    )


def plan_residency(
    layers: Sequence[ConvSpec],
    config: TPUConfig = TPU_V2,
    activation_budget_fraction: float = 0.5,
) -> List[ResidencyDecision]:
    """Decide, per edge, whether the activation stays in the vector memories.

    The budget is a fraction of the unified SRAM (the rest holds weights in
    flight and the working IFMap/OFMap blocks of the running layer).
    """
    if not layers:
        raise ValueError("layers must be non-empty")
    if not (0 < activation_budget_fraction < 1):
        raise ValueError("activation_budget_fraction must be in (0, 1)")
    budget = int(config.unified_sram_bytes * activation_budget_fraction)
    decisions = []
    for i in range(len(layers) - 1):
        producer, consumer = layers[i], layers[i + 1]
        activation = producer.ofmap_bytes(config.compute_elem_bytes)
        if not _chainable(producer, consumer):
            decisions.append(
                ResidencyDecision(i, False, activation, "not a chain edge")
            )
        elif activation > budget:
            decisions.append(
                ResidencyDecision(i, False, activation, "exceeds activation budget")
            )
        else:
            decisions.append(ResidencyDecision(i, True, activation, "resident"))
    return decisions


class _ResidentInputEngine(FillEngine):
    """A fill engine for layers whose IFMap already sits in the vector
    memories: input fills cost nothing, weight/OFMap movement is unchanged."""

    def ifmap_tile_fill_cycles(self, spec, rows, group_size, layout=None):
        return 0.0


def _layer_cycles(
    spec: ConvSpec,
    config: TPUConfig,
    engine: FillEngine,
    input_resident: bool,
    output_resident: bool,
) -> LayerResult:
    """One layer with optionally-elided IFMap fills / OFMap drains."""
    name = spec.describe()
    policy_group = tpu_multi_tile_policy(spec, config.array_rows)

    def compute() -> LayerResult:
        layer_engine = _ResidentInputEngine(config, engine.hbm) if input_resident else engine
        schedule = perf_schedules.channel_first_schedule_arrays(spec, config, layer_engine)
        if output_resident:
            schedule = schedule.without_drains()
        outcome = perf_schedules.execute_schedule_arrays(schedule)
        cycles = outcome.total_cycles
        return LayerResult(
            name=name,
            cycles=cycles,
            tflops=2 * spec.macs * config.clock_ghz / cycles / 1e3,
            utilization=spec.macs / (config.peak_macs_per_cycle * cycles),
            compute_cycles=outcome.compute_cycles,
            dma_cycles=outcome.dma_cycles,
            exposed_dma_cycles=outcome.exposed_dma_cycles,
            macs=spec.macs,
            group_size=policy_group,
        )

    key = (
        "tpu-resident",
        config_key(config),
        spec_key(spec),
        bool(input_resident),
        bool(output_resident),
    )
    canonical = None
    if not input_resident and not output_resident:
        # A layer with no residency on either side is priced exactly like
        # TPUSim.simulate_conv under the default group/layout — field for
        # field, association for association — so it publishes the same
        # symmetry-folded key and the two namespaces share one computation.
        canon, _ = canonical_spec(spec)
        canonical = (
            "tpu-conv@c",
            config_key(config),
            spec_key(canon),
            policy_group,
            "NHWC",
        )
    result = SIM_CACHE.get_or_compute(key, compute, canonical_key=canonical)
    if result.name != name:
        result = dataclasses.replace(result, name=name)
    return result


def residency_traffic_saved_bytes(
    layers: Sequence[ConvSpec],
    config: TPUConfig = TPU_V2,
    activation_budget_fraction: float = 0.5,
) -> int:
    """DRAM bytes the resident plan avoids: each resident activation skips
    one writeback and one re-read."""
    decisions = plan_residency(layers, config, activation_budget_fraction)
    return sum(2 * d.activation_bytes for d in decisions if d.resident)


def simulate_network_resident(
    name: str,
    layers: Sequence[ConvSpec],
    config: TPUConfig = TPU_V2,
    activation_budget_fraction: float = 0.5,
) -> NetworkResult:
    """Network simulation with chain-edge activation residency."""
    decisions = plan_residency(layers, config, activation_budget_fraction)
    engine = FillEngine(config)
    results = []
    for i, spec in enumerate(layers):
        input_resident = i > 0 and decisions[i - 1].resident
        output_resident = i < len(decisions) and decisions[i].resident
        results.append(
            _layer_cycles(spec, config, engine, input_resident, output_resident)
        )
    return NetworkResult(name=name, layers=results)
