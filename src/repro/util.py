"""Small shared utilities with no internal dependencies."""

from __future__ import annotations

import hashlib

__all__ = ["deterministic_noise"]


def deterministic_noise(key: str, amplitude: float, seed: int = 0) -> float:
    """A value in ``[-amplitude, +amplitude]``, a pure function of inputs.

    Uses SHA-256 of ``f"{seed}:{key}"`` mapped uniformly onto the interval.
    Used by the measurement stand-ins so "hardware" numbers are reproducible
    bit-for-bit across runs and platforms.
    """
    if amplitude < 0:
        raise ValueError(f"amplitude must be non-negative, got {amplitude}")
    if amplitude == 0:
        return 0.0
    digest = hashlib.sha256(f"{seed}:{key}".encode("utf-8")).digest()
    fraction = int.from_bytes(digest[:8], "big") / float(1 << 64)  # [0, 1)
    return (2.0 * fraction - 1.0) * amplitude
