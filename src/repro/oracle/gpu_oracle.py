"""V100/cuDNN measurement stand-in, mirroring :mod:`repro.oracle.tpu_oracle`.

Thin facade over the cuDNN model so experiments address both "hardware"
oracles through the same vocabulary (`measured_*`).  Also provides the
measured explicit-im2col decomposition used by Fig 2 (where the paper reads
GEMM time and transform time off the profiler).
"""

from __future__ import annotations

import dataclasses

from ..core.conv_spec import ConvSpec
from ..gpu.config import GPUConfig, V100
from ..gpu.cudnn_model import cudnn_conv_time
from ..gpu.explicit import ExplicitConvResult, explicit_conv_time
from .noise import deterministic_noise

__all__ = ["GPUOracle"]


@dataclasses.dataclass(frozen=True)
class GPUOracle:
    """Measured V100 numbers for implicit (cuDNN) and explicit conv paths."""

    config: GPUConfig = V100
    noise_amplitude: float = 0.015
    seed: int = 2021

    def measured_implicit_seconds(self, spec: ConvSpec) -> float:
        """cuDNN IMPLICIT_PRECOMP_GEMM time (the Fig 2a/17/18 baseline)."""
        return cudnn_conv_time(
            spec, self.config, noise_amplitude=self.noise_amplitude, seed=self.seed
        ).seconds

    def measured_explicit(self, spec: ConvSpec) -> ExplicitConvResult:
        """Explicit path with its transform/GEMM split, noise applied to both
        kernels independently (they are separate profiler entries)."""
        base = explicit_conv_time(spec, self.config)
        t_factor = 1.0 + deterministic_noise(
            f"xform:{spec.describe()}", self.noise_amplitude, self.seed
        )
        g_factor = 1.0 + deterministic_noise(
            f"xgemm:{spec.describe()}", self.noise_amplitude, self.seed
        )
        return ExplicitConvResult(
            transform=base.transform.scaled(t_factor),
            gemm=base.gemm.scaled(g_factor),
            workspace_bytes=base.workspace_bytes,
        )

    def measured_implicit_tflops(self, spec: ConvSpec) -> float:
        seconds = self.measured_implicit_seconds(spec)
        return 2 * spec.macs / seconds / 1e12
