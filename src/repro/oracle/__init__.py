"""Hardware-measurement stand-ins (see DESIGN.md substitution table):
an analytic TPU-v2 oracle and a cuDNN/V100 oracle, both with deterministic
measurement noise."""

from .noise import deterministic_noise
from .tpu_oracle import TPUv2Oracle
from .gpu_oracle import GPUOracle

__all__ = ["deterministic_noise", "TPUv2Oracle", "GPUOracle"]
