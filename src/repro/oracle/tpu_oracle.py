"""TPU-v2 measurement stand-in: an independent analytic performance model.

Role (see DESIGN.md substitutions): the paper validates TPUSim against real
cloud TPU-v2 boards (Figs 13, 14b, 15).  Offline, this oracle plays the
hardware.  It is deliberately built from *different abstractions* than the
simulator — closed-form throughput/roofline arithmetic instead of an
event-driven tile pipeline — so the validation compares two independently
constructed models of the same machine:

- compute: each stationary-tile pass streams ``max(M, array)`` cycles, with
  K/N padded to array multiples and one pipeline fill charged per pass
  sequence;
- memory: compulsory traffic (operands once, multi-tile duplication charged)
  at peak bandwidth with a fragmentation surcharge for strided patterns;
- the inferred multi-tile policy ``MIN(array/C_I, W_F)`` (Fig 14b);
- deterministic measurement noise (default ±7.5%) standing in for run-to-run
  and unmodelled microarchitectural variation; the paper's reported 4-6%
  average simulator-vs-hardware errors set this scale.
"""

from __future__ import annotations

import dataclasses
import math

from ..core.conv_spec import ConvSpec, GemmShape
from ..core.tiling import tpu_multi_tile_policy
from ..systolic.config import TPUConfig, TPU_V2
from .noise import deterministic_noise

__all__ = ["TPUv2Oracle"]


@dataclasses.dataclass(frozen=True)
class TPUv2Oracle:
    """The "hardware": measured cycles for GEMM and CONV workloads."""

    config: TPUConfig = TPU_V2
    noise_amplitude: float = 0.075
    seed: int = 2021

    # ------------------------------------------------------------- primitives
    def measured_gemm_cycles(self, shape: GemmShape) -> float:
        """Measured execution cycles of one GEMM on the TPU-v2 (Fig 13a)."""
        cfg = self.config
        k_passes = math.ceil(shape.k / cfg.array_rows)
        n_passes = math.ceil(shape.n / cfg.array_cols)
        compute = k_passes * n_passes * max(shape.m, cfg.array_rows)
        compute += cfg.array_rows + cfg.array_cols  # pipeline fill/drain, once
        elem = cfg.compute_elem_bytes
        traffic = elem * (shape.m * shape.k + shape.k * shape.n + shape.m * shape.n)
        memory = traffic / cfg.hbm.bytes_per_cycle
        base = max(compute, memory) + 500.0  # dispatch/launch overhead
        return base * (1.0 + self._noise(f"gemm:{shape.m}x{shape.k}x{shape.n}"))

    def measured_conv_cycles(self, spec: ConvSpec) -> float:
        """Measured execution cycles of one CONV layer (Figs 13b/14b/15)."""
        cfg = self.config
        group = tpu_multi_tile_policy(spec, cfg.array_rows)
        groups = spec.h_filter * math.ceil(spec.w_filter / group)
        tiles_in_group = min(group, spec.w_filter)
        merged_k = tiles_in_group * spec.c_in
        k_passes = math.ceil(merged_k / cfg.array_rows)
        n_passes = math.ceil(spec.c_out / cfg.array_cols)
        m = spec.lowered_rows()
        compute = groups * k_passes * n_passes * max(m, cfg.array_rows)
        compute += cfg.array_rows + cfg.array_cols
        elem = cfg.compute_elem_bytes
        # IFMap is re-staged once per decomposed filter (multi-tile
        # duplication exactly cancels the group-count reduction), weights and
        # OFMap move once.
        ifmap_traffic = spec.positions * m * spec.c_in * elem
        traffic = ifmap_traffic + spec.filter_bytes(elem) + spec.ofmap_bytes(elem)
        fragmentation = 1.0 if spec.stride == 1 and spec.dilation == 1 else 1.35
        memory = traffic * fragmentation / cfg.hbm.bytes_per_cycle
        base = max(compute, memory) + 500.0
        return base * (1.0 + self._noise(f"conv:{spec.describe()}"))

    # -------------------------------------------------------------- derived
    def measured_conv_tflops(self, spec: ConvSpec) -> float:
        cycles = self.measured_conv_cycles(spec)
        return 2 * spec.macs * self.config.clock_ghz / cycles / 1e3

    def measured_gemm_tflops(self, shape: GemmShape) -> float:
        cycles = self.measured_gemm_cycles(shape)
        return 2 * shape.macs * self.config.clock_ghz / cycles / 1e3

    def measured_network_cycles(self, layers) -> float:
        return sum(self.measured_conv_cycles(layer) for layer in layers)

    def _noise(self, key: str) -> float:
        return deterministic_noise(key, self.noise_amplitude, self.seed)
