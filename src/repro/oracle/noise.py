"""Deterministic measurement-noise injection.

The hardware stand-ins (TPU-v2 oracle, cuDNN model) perturb their analytic
outputs with noise so validation experiments exercise real error statistics
instead of comparing a model to itself.  The noise is a pure function of a
string key and a seed — stable across runs, processes and platforms — so
every experiment is bit-reproducible.

(Implementation lives in :mod:`repro.util` to keep the dependency graph
acyclic; this module is the documented home.)
"""

from __future__ import annotations

from ..util import deterministic_noise

__all__ = ["deterministic_noise"]
