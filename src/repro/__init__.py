"""repro — reproduction of "Characterizing and Demystifying the Implicit
Convolution Algorithm on Commercial Matrix-Multiplication Accelerators"
(IISWC 2021).

Public surface:

- :mod:`repro.core` — the channel-first implicit im2col algorithm and all
  convolution/GEMM geometry.
- :mod:`repro.memory` — DRAM (HBM) and SRAM substrates.
- :mod:`repro.systolic` — TPUSim, the configurable cycle-level systolic-array
  simulator.
- :mod:`repro.gpu` — the tensor-core timing model and the three GPU
  convolution paths (explicit, channel-last, channel-first).
- :mod:`repro.oracle` — measurement stand-ins for TPU-v2 and cuDNN/V100.
- :mod:`repro.workloads` — the seven CNNs plus synthetic sweeps.
- :mod:`repro.analysis` — metrics, roofline and validation machinery.
- :mod:`repro.harness` — experiment runners for every table and figure.
"""

__version__ = "1.0.0"

from . import core

__all__ = ["core", "__version__"]
